"""The memory-based dynamic-heap half of LHDH (paper §III-C).

A binary min-heap over ``(key, edge id)`` with a position map, supporting the
operations the lazy-update kernel needs: ``push``, ``pop``, ``top``,
``decrease_key`` (an updated edge "dynamically adjusts its position upwards",
as the paper puts it), arbitrary ``remove``, and membership/key queries —
all O(log size), all purely in memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import HeapEmptyError, HeapError


class DynamicHeap:
    """In-memory min-heap with a position map keyed by edge id."""

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._eids: List[int] = []
        self._positions: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _swap(self, i: int, j: int) -> None:
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._eids[i], self._eids[j] = self._eids[j], self._eids[i]
        self._positions[self._eids[i]] = i
        self._positions[self._eids[j]] = j

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) >> 1
            if self._keys[index] < self._keys[parent]:
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._keys)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._keys[left] < self._keys[smallest]:
                smallest = left
            if right < size and self._keys[right] < self._keys[smallest]:
                smallest = right
            if smallest == index:
                return
            self._swap(index, smallest)
            index = smallest

    # ------------------------------------------------------------------ #
    # public operations
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, eid: int) -> bool:
        return eid in self._positions

    def push(self, eid: int, key: int) -> None:
        """Insert *eid* with *key*; raises if already present."""
        if eid in self._positions:
            raise HeapError(f"edge {eid} already in dynamic heap")
        self._keys.append(key)
        self._eids.append(eid)
        self._positions[eid] = len(self._keys) - 1
        self._sift_up(len(self._keys) - 1)

    def top(self) -> Tuple[int, int]:
        """``(eid, key)`` with the smallest key, without removal."""
        if not self._keys:
            raise HeapEmptyError("top() on empty dynamic heap")
        return self._eids[0], self._keys[0]

    def top_key(self) -> Optional[int]:
        """Smallest key, or ``None`` when empty."""
        return self._keys[0] if self._keys else None

    def pop(self) -> Tuple[int, int]:
        """Remove and return the ``(eid, key)`` with the smallest key."""
        if not self._keys:
            raise HeapEmptyError("pop() on empty dynamic heap")
        eid, key = self._eids[0], self._keys[0]
        self._remove_at(0)
        return eid, key

    def _remove_at(self, index: int) -> None:
        last = len(self._keys) - 1
        removed_eid = self._eids[index]
        if index != last:
            self._swap(index, last)
        self._keys.pop()
        self._eids.pop()
        del self._positions[removed_eid]
        if index <= last - 1 and index < len(self._keys):
            self._sift_down(index)
            self._sift_up(index)

    def remove(self, eid: int) -> int:
        """Remove *eid*; returns its key."""
        index = self._positions.get(eid)
        if index is None:
            raise HeapError(f"edge {eid} not in dynamic heap")
        key = self._keys[index]
        self._remove_at(index)
        return key

    def key_of(self, eid: int) -> int:
        """Current key of *eid* (the paper's ``dheap.getSup``)."""
        index = self._positions.get(eid)
        if index is None:
            raise HeapError(f"edge {eid} not in dynamic heap")
        return self._keys[index]

    def decrease_key(self, eid: int, new_key: int) -> None:
        """Lower *eid*'s key to *new_key* and sift it upwards."""
        index = self._positions.get(eid)
        if index is None:
            raise HeapError(f"edge {eid} not in dynamic heap")
        if new_key > self._keys[index]:
            raise HeapError(
                f"decrease_key would raise key of edge {eid}: "
                f"{self._keys[index]} -> {new_key}"
            )
        self._keys[index] = new_key
        self._sift_up(index)

    def decrement(self, eid: int) -> int:
        """Decrease *eid*'s key by one; returns the new key."""
        index = self._positions.get(eid)
        if index is None:
            raise HeapError(f"edge {eid} not in dynamic heap")
        self._keys[index] -= 1
        new_key = self._keys[index]
        self._sift_up(index)
        return new_key

    def items(self) -> List[Tuple[int, int]]:
        """All ``(eid, key)`` pairs in unspecified order."""
        return list(zip(self._eids, self._keys))

    @property
    def nbytes(self) -> int:
        """Approximate model-memory footprint (3 machine words per entry)."""
        return 24 * len(self._keys)
