"""The disk-based linear-heap half of LHDH (paper §III-C, Fig 3).

Edges are bucketed by support. Each bucket is a doubly-linked list whose
node records (``key``, ``prev``, ``next``) live in :class:`DiskArray`s —
every link-field touch is a charged I/O. Bucket heads, bucket occupancy
counts and the running minimum live in memory (the paper: "it becomes
feasible to retain the information of the head node ... in memory", since
max support < n).

This structure is also used *alone* by SemiBinary and SemiGreedyCore as
``A_disk``, the bin-sorted edge array whose "reorder (u,w) and (v,w)
according to their new support" steps each pay disk I/O — the cost the
dynamic heap of :mod:`repro.structures.lhdh` exists to avoid.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import HeapEmptyError, HeapError
from ..storage import BlockDevice, DiskArray, MemoryMeter

_NIL = -1      # end of a bucket list
_DEAD = -2     # edge removed from the heap


class LinearHeap:
    """Disk-resident bucket queue over edge ids keyed by support.

    Parameters
    ----------
    device:
        Block device holding the link arrays.
    num_edges:
        Capacity: edge ids must lie in ``[0, num_edges)``.
    max_key:
        Largest representable key (bucket count − 1).
    memory:
        Optional meter charged for the in-memory bucket heads.
    """

    def __init__(
        self,
        device: BlockDevice,
        num_edges: int,
        max_key: int,
        memory: Optional[MemoryMeter] = None,
        name: str = "lheap",
    ) -> None:
        if max_key < 0:
            raise HeapError("max_key must be non-negative")
        self.device = device
        self.memory = memory
        self.name = name
        self.max_key = int(max_key)
        # Disk-resident node records.
        self.keys = DiskArray(device, num_edges, np.int64, name=f"{name}.key", fill=0)
        self.prev = DiskArray(device, num_edges, np.int64, name=f"{name}.prev", fill=_NIL)
        self.next = DiskArray(device, num_edges, np.int64, name=f"{name}.next", fill=_DEAD)
        # In-memory bucket heads + occupancy (the semi-external allowance).
        self.heads = np.full(self.max_key + 1, _NIL, dtype=np.int64)
        self.counts = np.zeros(self.max_key + 1, dtype=np.int64)
        self._size = 0
        self._min_cursor = 0
        if memory is not None:
            memory.charge(f"{name}.heads", self.heads.nbytes + self.counts.nbytes)

    # ------------------------------------------------------------------ #
    # bulk construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        device: BlockDevice,
        eids: Iterable[int],
        keys: Iterable[int],
        max_key: Optional[int] = None,
        num_edges: Optional[int] = None,
        memory: Optional[MemoryMeter] = None,
        name: str = "lheap",
    ) -> "LinearHeap":
        """Build a heap from parallel ``eids`` / ``keys`` sequences.

        Construction streams the records to disk in bucket order — the
        bin-sort write pass of Alg 1 line 10.
        """
        eid_array = np.asarray(list(eids), dtype=np.int64)
        key_array = np.asarray(list(keys), dtype=np.int64)
        if len(eid_array) != len(key_array):
            raise HeapError("eids and keys must have equal length")
        if max_key is None:
            max_key = int(key_array.max()) if len(key_array) else 0
        if num_edges is None:
            num_edges = int(eid_array.max()) + 1 if len(eid_array) else 0
        heap = cls(device, num_edges, max_key, memory=memory, name=name)
        # Insert in reverse so each bucket lists ids in ascending order.
        for eid, key in zip(eid_array[::-1], key_array[::-1]):
            heap.insert(int(eid), int(key))
        return heap

    # ------------------------------------------------------------------ #
    # primitive operations (each link touch is charged I/O)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def insert(self, eid: int, key: int) -> None:
        """Link *eid* at the front of bucket *key*."""
        if key < 0 or key > self.max_key:
            raise HeapError(f"key {key} outside [0, {self.max_key}]")
        head = int(self.heads[key])
        self.keys.set(eid, key)
        self.prev.set(eid, _NIL)
        self.next.set(eid, head)
        if head != _NIL:
            self.prev.set(head, eid)
        self.heads[key] = eid
        self.counts[key] += 1
        self._size += 1
        if key < self._min_cursor:
            self._min_cursor = key

    def contains(self, eid: int) -> bool:
        """Whether *eid* is currently linked (charged: reads its record)."""
        return self.next.get(eid) != _DEAD

    def key_of(self, eid: int) -> int:
        """Current key of a linked edge (charged read)."""
        if self.next.get(eid) == _DEAD:
            raise HeapError(f"edge {eid} not in linear heap")
        return self.keys.get(eid)

    def remove(self, eid: int) -> int:
        """Unlink *eid*; returns its key. Charged link-field I/O."""
        next_eid = self.next.get(eid)
        if next_eid == _DEAD:
            raise HeapError(f"edge {eid} not in linear heap")
        prev_eid = self.prev.get(eid)
        key = self.keys.get(eid)
        if prev_eid != _NIL:
            self.next.set(prev_eid, next_eid)
        else:
            self.heads[key] = next_eid
        if next_eid != _NIL:
            self.prev.set(next_eid, prev_eid)
        self.next.set(eid, _DEAD)
        self.counts[key] -= 1
        self._size -= 1
        return int(key)

    def update_key(self, eid: int, new_key: int) -> None:
        """Move *eid* to bucket *new_key* (the A_disk "reorder" step)."""
        self.remove(eid)
        self.insert(eid, new_key)

    def decrement(self, eid: int) -> int:
        """Decrease *eid*'s key by one; returns the new key."""
        key = self.remove(eid)
        if key == 0:
            raise HeapError(f"cannot decrement edge {eid} below key 0")
        self.insert(eid, key - 1)
        return key - 1

    # ------------------------------------------------------------------ #
    # minimum access
    # ------------------------------------------------------------------ #

    def min_key(self) -> Optional[int]:
        """Smallest occupied key, or ``None`` when empty (in-memory scan)."""
        if self._size == 0:
            return None
        while self._min_cursor <= self.max_key and self.counts[self._min_cursor] == 0:
            self._min_cursor += 1
        return int(self._min_cursor)

    def top(self) -> Tuple[int, int]:
        """``(eid, key)`` at the current minimum, without removal."""
        key = self.min_key()
        if key is None:
            raise HeapEmptyError("top() on empty linear heap")
        return int(self.heads[key]), key

    def pop_min(self) -> Tuple[int, int]:
        """Remove and return the ``(eid, key)`` with the smallest key."""
        eid, key = self.top()
        self.remove(eid)
        return eid, key

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def iter_bucket(self, key: int):
        """Yield edge ids in bucket *key* front-to-back (charged reads)."""
        eid = int(self.heads[key])
        while eid != _NIL:
            yield eid
            eid = self.next.get(eid)

    def live_items(self):
        """Yield all ``(eid, key)`` pairs (charged; tests/result use)."""
        for key in range(self.max_key + 1):
            if self.counts[key]:
                for eid in self.iter_bucket(key):
                    yield eid, key

    def release(self) -> None:
        """Free the disk extents and memory charge."""
        self.keys.free()
        self.prev.free()
        self.next.free()
        if self.memory is not None:
            self.memory.release(f"{self.name}.heads")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearHeap({self.name!r}, size={self._size}, max_key={self.max_key})"
