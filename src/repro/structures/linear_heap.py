"""The disk-based linear-heap half of LHDH (paper §III-C, Fig 3).

Edges are bucketed by support. Each bucket is a doubly-linked list whose
node records (``key``, ``prev``, ``next``) live in :class:`DiskArray`s —
every link-field touch is a charged I/O. Bucket heads, bucket occupancy
counts and the running minimum live in memory (the paper: "it becomes
feasible to retain the information of the head node ... in memory", since
max support < n).

This structure is also used *alone* by SemiBinary and SemiGreedyCore as
``A_disk``, the bin-sorted edge array whose "reorder (u,w) and (v,w)
according to their new support" steps each pay disk I/O — the cost the
dynamic heap of :mod:`repro.structures.lhdh` exists to avoid.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..engine.context import ensure_device
from ..errors import HeapEmptyError, HeapError
from ..storage import BlockDevice, DiskArray, MemoryMeter

_NIL = -1      # end of a bucket list
_DEAD = -2     # edge removed from the heap


class LinearHeap:
    """Disk-resident bucket queue over edge ids keyed by support.

    Parameters
    ----------
    device:
        Block device holding the link arrays.
    num_edges:
        Capacity: edge ids must lie in ``[0, num_edges)``.
    max_key:
        Largest representable key (bucket count − 1).
    memory:
        Optional meter charged for the in-memory bucket heads.
    """

    def __init__(
        self,
        device: BlockDevice,
        num_edges: int,
        max_key: int,
        memory: Optional[MemoryMeter] = None,
        name: str = "lheap",
    ) -> None:
        if max_key < 0:
            raise HeapError("max_key must be non-negative")
        device = ensure_device(device)
        self.device = device
        self.memory = memory
        self.name = name
        self.max_key = int(max_key)
        # Disk-resident node records.
        self.keys = DiskArray(device, num_edges, np.int64, name=f"{name}.key", fill=0)
        self.prev = DiskArray(device, num_edges, np.int64, name=f"{name}.prev", fill=_NIL)
        self.next = DiskArray(device, num_edges, np.int64, name=f"{name}.next", fill=_DEAD)
        # In-memory bucket heads + occupancy (the semi-external allowance).
        self.heads = np.full(self.max_key + 1, _NIL, dtype=np.int64)
        self.counts = np.zeros(self.max_key + 1, dtype=np.int64)
        self._size = 0
        self._min_cursor = 0
        if memory is not None:
            memory.charge(f"{name}.heads", self.heads.nbytes + self.counts.nbytes)

    # ------------------------------------------------------------------ #
    # bulk construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        device: BlockDevice,
        eids: Iterable[int],
        keys: Iterable[int],
        max_key: Optional[int] = None,
        num_edges: Optional[int] = None,
        memory: Optional[MemoryMeter] = None,
        name: str = "lheap",
    ) -> "LinearHeap":
        """Build a heap from parallel ``eids`` / ``keys`` sequences.

        The final structure is exactly what inserting the sequence in
        reverse would produce (each bucket lists its edge ids in the given
        order), but the link fields are computed vectorized and written to
        disk through the batch path in one bin-sort write pass (Alg 1
        line 10) instead of ``O(m)`` individual link updates.
        """
        eid_array = np.asarray(list(eids), dtype=np.int64)
        key_array = np.asarray(list(keys), dtype=np.int64)
        if len(eid_array) != len(key_array):
            raise HeapError("eids and keys must have equal length")
        if max_key is None:
            max_key = int(key_array.max()) if len(key_array) else 0
        if num_edges is None:
            num_edges = int(eid_array.max()) + 1 if len(eid_array) else 0
        heap = cls(device, num_edges, max_key, memory=memory, name=name)
        count = len(eid_array)
        if count == 0:
            return heap
        if key_array.min() < 0 or key_array.max() > max_key:
            raise HeapError(f"key outside [0, {max_key}]")
        # Stable sort groups each bucket while preserving the sequence
        # order inside it — the order sequential front-inserts (in reverse)
        # would leave the bucket lists in.
        order = np.argsort(key_array, kind="stable")
        sorted_eids = eid_array[order]
        sorted_keys = key_array[order]
        same_as_prev = np.zeros(count, dtype=bool)
        same_as_prev[1:] = sorted_keys[1:] == sorted_keys[:-1]
        prev_vals = np.where(same_as_prev, np.roll(sorted_eids, 1), _NIL)
        same_as_next = np.zeros(count, dtype=bool)
        same_as_next[:-1] = same_as_prev[1:]
        next_vals = np.where(same_as_next, np.roll(sorted_eids, -1), _NIL)
        # In-memory bucket heads / occupancy (the semi-external allowance).
        bucket_firsts = ~same_as_prev
        heap.heads[sorted_keys[bucket_firsts]] = sorted_eids[bucket_firsts]
        heap.counts[:] = np.bincount(
            key_array, minlength=heap.max_key + 1
        )[: heap.max_key + 1]
        heap._size = count
        # Disk write pass: one batched scatter per link array, in ascending
        # edge-id order (near-sequential on the common dense id ranges).
        ascending = np.argsort(sorted_eids, kind="stable")
        write_eids = sorted_eids[ascending]
        if count == num_edges and np.array_equal(
            write_eids, np.arange(num_edges, dtype=np.int64)
        ):
            # Dense case: full sequential rewrite, no read-modify-write.
            heap.keys.write_slice(0, sorted_keys[ascending])
            heap.prev.write_slice(0, prev_vals[ascending])
            heap.next.write_slice(0, next_vals[ascending])
        else:
            heap.keys.scatter(write_eids, sorted_keys[ascending])
            heap.prev.scatter(write_eids, prev_vals[ascending])
            heap.next.scatter(write_eids, next_vals[ascending])
        return heap

    # ------------------------------------------------------------------ #
    # primitive operations (each link touch is charged I/O)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def insert(self, eid: int, key: int) -> None:
        """Link *eid* at the front of bucket *key*."""
        if key < 0 or key > self.max_key:
            raise HeapError(f"key {key} outside [0, {self.max_key}]")
        head = int(self.heads[key])
        self.keys.set(eid, key)
        self.prev.set(eid, _NIL)
        self.next.set(eid, head)
        if head != _NIL:
            self.prev.set(head, eid)
        self.heads[key] = eid
        self.counts[key] += 1
        self._size += 1
        if key < self._min_cursor:
            self._min_cursor = key

    def contains(self, eid: int) -> bool:
        """Whether *eid* is currently linked (charged: reads its record)."""
        return self.next.get(eid) != _DEAD

    def key_of(self, eid: int) -> int:
        """Current key of a linked edge (charged read)."""
        if self.next.get(eid) == _DEAD:
            raise HeapError(f"edge {eid} not in linear heap")
        return self.keys.get(eid)

    def probe_keys(self, eids: np.ndarray) -> np.ndarray:
        """Batched aliveness + key probe: ``keys[i]`` or ``-1`` if dead.

        One gather over the ``next`` records answers aliveness for the whole
        batch; keys are gathered only for the survivors. Charged through
        the device's run-compressed batch path.
        """
        eids = np.asarray(eids, dtype=np.int64)
        out = np.full(len(eids), -1, dtype=np.int64)
        if len(eids) == 0:
            return out
        alive = self.next.gather(eids) != _DEAD
        if alive.any():
            out[alive] = self.keys.gather(eids[alive])
        return out

    def remove(self, eid: int) -> int:
        """Unlink *eid*; returns its key. Charged link-field I/O."""
        next_eid = self.next.get(eid)
        if next_eid == _DEAD:
            raise HeapError(f"edge {eid} not in linear heap")
        prev_eid = self.prev.get(eid)
        key = self.keys.get(eid)
        if prev_eid != _NIL:
            self.next.set(prev_eid, next_eid)
        else:
            self.heads[key] = next_eid
        if next_eid != _NIL:
            self.prev.set(next_eid, prev_eid)
        self.next.set(eid, _DEAD)
        self.counts[key] -= 1
        self._size -= 1
        return int(key)

    def update_key(self, eid: int, new_key: int) -> None:
        """Move *eid* to bucket *new_key* (the A_disk "reorder" step)."""
        self.remove(eid)
        self.insert(eid, new_key)

    def decrement(self, eid: int) -> int:
        """Decrease *eid*'s key by one; returns the new key."""
        key = self.remove(eid)
        if key == 0:
            raise HeapError(f"cannot decrement edge {eid} below key 0")
        self.insert(eid, key - 1)
        return key - 1

    # ------------------------------------------------------------------ #
    # minimum access
    # ------------------------------------------------------------------ #

    def min_key(self) -> Optional[int]:
        """Smallest occupied key, or ``None`` when empty (in-memory scan)."""
        if self._size == 0:
            return None
        while self._min_cursor <= self.max_key and self.counts[self._min_cursor] == 0:
            self._min_cursor += 1
        return int(self._min_cursor)

    def top(self) -> Tuple[int, int]:
        """``(eid, key)`` at the current minimum, without removal."""
        key = self.min_key()
        if key is None:
            raise HeapEmptyError("top() on empty linear heap")
        return int(self.heads[key]), key

    def pop_min(self) -> Tuple[int, int]:
        """Remove and return the ``(eid, key)`` with the smallest key."""
        eid, key = self.top()
        self.remove(eid)
        return eid, key

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def iter_bucket(self, key: int):
        """Yield edge ids in bucket *key* front-to-back (charged reads)."""
        eid = int(self.heads[key])
        while eid != _NIL:
            yield eid
            eid = self.next.get(eid)

    def live_items(self):
        """Yield all ``(eid, key)`` pairs (charged; tests/result use)."""
        for key in range(self.max_key + 1):
            if self.counts[key]:
                for eid in self.iter_bucket(key):
                    yield eid, key

    def release(self) -> None:
        """Free the disk extents and memory charge."""
        self.keys.free()
        self.prev.free()
        self.next.free()
        if self.memory is not None:
            self.memory.release(f"{self.name}.heads")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearHeap({self.name!r}, size={self._size}, max_key={self.max_key})"
