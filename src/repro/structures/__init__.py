"""Heap structures: disk linear-heap, memory dynamic-heap, composite LHDH."""

from .dynamic_heap import DynamicHeap
from .linear_heap import LinearHeap
from .lhdh import LHDH

__all__ = ["DynamicHeap", "LinearHeap", "LHDH"]
