"""Pipelined batch ingestion: bounded queue, micro-batches, backpressure.

The per-op ingestion path applies (and, durably, fsyncs) every edge update
on its own, so sustained throughput is barrier-bound. This module is the
streaming front end that fixes that: a producer-facing :meth:`submit`
feeds a **bounded queue**, and a consumer drains it in **micro-batches**
that flush adaptively — on size (a full batch is waiting), on age (the
oldest queued event has waited ``max_delay`` seconds), or on queue
pressure (the queue hit capacity). Each drained batch goes through one
``apply_batch``/``DurableMaintenance.apply`` call, which coalesces
net-zero churn and — on the durable path — group-commits the whole batch
under a single fsync (:meth:`repro.persistence.wal.WriteAheadLog.append_group`).

Backpressure is explicit: when the queue is full, the configured policy
decides whether the producer **blocks** (in synchronous mode the producer
simply does the consumer's work inline), the **oldest** queued event is
dropped, or the new event is **rejected** (``submit`` returns ``False``).
A firehose therefore degrades gracefully — bounded memory, counted losses
— instead of growing unbounded state.

Two execution modes share all of the above:

* **synchronous** (default): ``submit`` drains ready batches inline on
  the caller's thread — fully deterministic, what the exactness tests
  sweep;
* **threaded**: :meth:`start` launches a consumer thread so producers and
  the apply path overlap (the "pipelined" in the name); results are
  identical because the queue is FIFO and batches apply sequentially.

Exactness is non-negotiable either way: for any accepted event sequence
the final decomposition is bit-identical to per-op maintenance of that
sequence (property-tested in ``tests/test_ingest.py``).

With ``window=N`` the pipeline additionally maintains sliding-window
semantics over *arrivals* (same rules as
:class:`~repro.dynamic.stream.SlidingWindowTruss`: duplicate live edges
skipped, the oldest live edge expires beyond the window). The window
transformation runs at drain time, in queue order, so dropping a queued
arrival under ``drop-oldest`` can never strand a half-applied edge.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..engine.config import INGEST_BACKPRESSURE_POLICIES, EngineConfig
from ..errors import IngestError
from ..observability.metrics import global_metrics

#: ("insert" | "delete", u, v)
BatchOp = Tuple[str, int, int]

#: Queue entry: (op-or-"arrival", u, v, enqueue time).
_Event = Tuple[str, int, int, float]

#: Size-flavoured buckets for the ``ingest.batch_size`` histogram.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

FLUSH_TRIGGERS = ("size", "age", "pressure", "manual")


@dataclass
class IngestStats:
    """Counters accumulated by one pipeline lifetime."""

    submitted: int = 0        #: submit calls (incl. rejected/dropped)
    accepted: int = 0         #: events that entered the queue
    dropped: int = 0          #: evicted by the drop-oldest policy
    rejected: int = 0         #: refused by the reject policy
    duplicates_skipped: int = 0  #: window mode: arrivals already live
    arrivals: int = 0         #: window mode: arrivals turned into inserts
    expirations: int = 0      #: window mode: evictions past the window
    applied_ops: int = 0      #: operations handed to the sink
    batches: int = 0          #: non-empty micro-batches applied
    flushes: Dict[str, int] = field(
        default_factory=lambda: {trigger: 0 for trigger in FLUSH_TRIGGERS}
    )
    max_queue_depth: int = 0
    apply_seconds: float = 0.0    #: time inside the sink's apply call
    elapsed_seconds: float = 0.0  #: first submit -> close wall-clock

    @property
    def edges_per_sec(self) -> float:
        """Sustained throughput over the pipeline lifetime (0 if idle)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.applied_ops / self.elapsed_seconds


class IngestPipeline:
    """Bounded-queue micro-batching front end for a maintenance sink.

    Parameters
    ----------
    sink:
        Where drained batches land: anything with ``apply_batch(ops)``
        (:class:`~repro.dynamic.DynamicMaxTruss`) or ``apply(ops)``
        (:class:`~repro.persistence.recovery.DurableMaintenance` — the
        durable path, one group-commit fsync per batch).
    window:
        ``None`` (default) ingests raw insert/delete operations. An
        integer enables sliding-window mode: :meth:`submit` takes edge
        *arrivals*, and the pipeline emits the matching insert/expire
        operations itself.
    batch_size:
        Micro-batch flush threshold (events); also the drain granularity.
    queue_capacity:
        Bound on queued events; reaching it engages *backpressure*.
    backpressure:
        ``"block"`` (default): the producer waits for space — in
        synchronous mode by draining a batch inline. ``"drop-oldest"``:
        evict the oldest queued event, count it in ``stats.dropped``.
        ``"reject"``: leave the queue untouched, ``submit`` returns
        ``False``.
    max_delay:
        Age trigger in seconds: a queued event older than this forces a
        flush even if the batch is not full. ``None`` disables (size and
        pressure triggers only).
    clock:
        Injectable monotonic clock (tests drive the age trigger with a
        fake one).
    on_batch_applied:
        Optional hook called as ``on_batch_applied(op_count)`` right after
        each non-empty micro-batch lands in the sink. The serve layer uses
        it to wake the snapshot promoter the moment new WAL records exist.
        Must be cheap and non-blocking: in synchronous mode it runs under
        the pipeline lock, and it must never call back into the pipeline.
        A raising hook is treated like a consumer failure.

    Example
    -------
    >>> from repro.dynamic import DynamicMaxTruss
    >>> from repro.graph.memgraph import Graph
    >>> state = DynamicMaxTruss(Graph.empty(0))
    >>> with IngestPipeline(state, window=100, batch_size=2) as pipe:
    ...     for edge in [(0, 1), (1, 2), (0, 2)]:
    ...         _ = pipe.submit(*edge)
    >>> state.k_max
    3
    """

    def __init__(
        self,
        sink,
        *,
        window: Optional[int] = None,
        batch_size: int = 64,
        queue_capacity: int = 1024,
        backpressure: str = "block",
        max_delay: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        on_batch_applied: Optional[Callable[[int], None]] = None,
    ) -> None:
        if window is not None and window < 1:
            raise IngestError(f"window must be >= 1 or None, got {window}")
        if batch_size < 1:
            raise IngestError(f"batch_size must be >= 1, got {batch_size}")
        if queue_capacity < 1:
            raise IngestError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if backpressure not in INGEST_BACKPRESSURE_POLICIES:
            raise IngestError(
                f"unknown backpressure policy {backpressure!r}; "
                f"known: {', '.join(INGEST_BACKPRESSURE_POLICIES)}"
            )
        apply_ops = getattr(sink, "apply_batch", None) or getattr(
            sink, "apply", None
        )
        if apply_ops is None:
            raise IngestError(
                f"sink {type(sink).__name__} has neither apply_batch nor apply"
            )
        self.sink = sink
        self._apply_ops = apply_ops
        self.window = window
        self.batch_size = batch_size
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.max_delay = max_delay
        self._clock = clock
        self.on_batch_applied = on_batch_applied
        self.stats = IngestStats()
        self._queue: Deque[_Event] = deque()
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._closing = False
        self._closed = False
        self._flush_requested = False
        self._inflight = False
        self._error: Optional[BaseException] = None
        self._started_at: Optional[float] = None
        # Window state (drain-side: mutated only by the consumer).
        self._live: Deque[Tuple[int, int]] = deque()
        self._live_set: set = set()

    @classmethod
    def from_config(
        cls, sink, config: EngineConfig, *, window: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        on_batch_applied: Optional[Callable[[int], None]] = None,
    ) -> "IngestPipeline":
        """Build a pipeline from the ``ingest_*`` knobs of *config*."""
        return cls(
            sink,
            window=window,
            batch_size=config.ingest_batch_size,
            queue_capacity=config.ingest_queue_capacity,
            backpressure=config.ingest_backpressure,
            max_delay=config.ingest_max_delay,
            clock=clock,
            on_batch_applied=on_batch_applied,
        )

    # ------------------------------------------------------------------ #
    # producer interface
    # ------------------------------------------------------------------ #

    def submit(self, u: int, v: int) -> bool:
        """Submit one edge arrival (window mode) / insertion (raw mode).

        Returns ``True`` when the event entered the queue, ``False`` when
        the ``reject`` policy refused it.
        """
        kind = "arrival" if self.window is not None else "insert"
        return self._submit_event(kind, int(u), int(v))

    def submit_op(self, op: str, u: int, v: int) -> bool:
        """Submit an explicit ``insert``/``delete`` operation (raw mode)."""
        if self.window is not None:
            raise IngestError(
                "explicit operations are invalid in window mode; "
                "submit arrivals and let the window emit expirations"
            )
        if op not in ("insert", "delete"):
            raise IngestError(f"unknown ingest operation {op!r}")
        return self._submit_event(op, int(u), int(v))

    def submit_many(self, edges) -> int:
        """Submit a sequence of ``(u, v)`` arrivals; returns accepted count."""
        accepted = 0
        for u, v in edges:
            if self.submit(int(u), int(v)):
                accepted += 1
        return accepted

    def _submit_event(self, kind: str, u: int, v: int) -> bool:
        if u == v:
            raise IngestError("self-loops are not allowed in the stream")
        with self._cond:
            self._check_error_locked()
            if self._closed or self._closing:
                raise IngestError("submit on a closed pipeline")
            if self._started_at is None:
                self._started_at = self._clock()
            self.stats.submitted += 1
            if len(self._queue) >= self.queue_capacity:
                if self.backpressure == "reject":
                    self.stats.rejected += 1
                    return False
                if self.backpressure == "drop-oldest":
                    self._queue.popleft()
                    self.stats.dropped += 1
                elif self._thread is not None:
                    while (
                        len(self._queue) >= self.queue_capacity
                        and self._error is None
                    ):
                        self._cond.wait()
                    self._check_error_locked()
                else:
                    # Synchronous block: the producer does the consumer's
                    # work inline — the queue-pressure flush.
                    self._drain_one_locked("pressure")
            self._queue.append((kind, u, v, self._clock()))
            self.stats.accepted += 1
            depth = len(self._queue)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            global_metrics().gauge("ingest.queue_depth").set(depth)
            if self._thread is not None:
                self._cond.notify_all()
            else:
                while self._sync_trigger_locked() is not None:
                    self._drain_one_locked(self._sync_trigger_locked())
        return True

    def flush(self) -> None:
        """Drain and apply everything queued, regardless of triggers."""
        with self._cond:
            self._check_error_locked()
            if self._thread is not None:
                self._flush_requested = True
                self._cond.notify_all()
                while (
                    self._queue or self._inflight or self._flush_requested
                ) and self._error is None:
                    self._cond.wait()
                self._check_error_locked()
            else:
                while self._queue:
                    self._drain_one_locked("manual")

    def close(self) -> None:
        """Flush, stop the consumer (if any) and finalise stats; idempotent."""
        with self._cond:
            if self._closed:
                return
            if self._thread is not None:
                self._closing = True
                self._cond.notify_all()
            else:
                while self._queue:
                    self._drain_one_locked("manual")
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._cond:
            self._closed = True
            if self._started_at is not None:
                self.stats.elapsed_seconds = self._clock() - self._started_at
            global_metrics().gauge("ingest.queue_depth").set(0)
            global_metrics().gauge("ingest.edges_per_sec").set(
                self.stats.edges_per_sec
            )
            self._check_error_locked()

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        if exc_type is None:
            self.close()

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #

    def start(self) -> "IngestPipeline":
        """Launch the background consumer thread (pipelined mode)."""
        with self._cond:
            self._check_error_locked()
            if self._closed or self._closing:
                raise IngestError("start on a closed pipeline")
            if self._thread is not None:
                raise IngestError("consumer already running")
            self._thread = threading.Thread(
                target=self._consumer_loop, name="ingest-consumer", daemon=True
            )
            self._thread.start()
        return self

    def queue_depth(self) -> int:
        """Events currently queued (pending, not yet drained)."""
        with self._cond:
            return len(self._queue)

    @property
    def k_max(self) -> int:
        """Current ``k_max`` of the sink state (flushes first)."""
        self.flush()
        return self._sink_state().k_max

    def truss_pairs(self) -> List[Tuple[int, int]]:
        """Current ``k_max``-truss of the sink state (flushes first)."""
        self.flush()
        return self._sink_state().truss_pairs()

    def _sink_state(self):
        return getattr(self.sink, "state", self.sink)

    # -- triggers ------------------------------------------------------- #

    def _sync_trigger_locked(self) -> Optional[str]:
        if len(self._queue) >= self.batch_size:
            return "size"
        if (
            self.max_delay is not None
            and self._queue
            and self._clock() - self._queue[0][3] >= self.max_delay
        ):
            return "age"
        return None

    def _drain_one_locked(self, trigger: str) -> None:
        """Take and apply one micro-batch on the caller's thread."""
        batch: List[_Event] = []
        while self._queue and len(batch) < self.batch_size:
            batch.append(self._queue.popleft())
        global_metrics().gauge("ingest.queue_depth").set(len(self._queue))
        if batch:
            self._apply_events(batch, trigger)

    # -- batch application (shared by both modes) ----------------------- #

    def _transform(self, events: List[_Event]) -> List[BatchOp]:
        if self.window is None:
            return [(kind, u, v) for kind, u, v, _t in events]
        ops: List[BatchOp] = []
        for _kind, u, v, _t in events:
            pair = (u, v) if u < v else (v, u)
            if pair in self._live_set:
                self.stats.duplicates_skipped += 1
                continue
            self._live.append(pair)
            self._live_set.add(pair)
            ops.append(("insert", pair[0], pair[1]))
            self.stats.arrivals += 1
            if len(self._live) > self.window:
                old = self._live.popleft()
                self._live_set.discard(old)
                ops.append(("delete", old[0], old[1]))
                self.stats.expirations += 1
        return ops

    def _apply_events(self, events: List[_Event], trigger: str) -> None:
        ops = self._transform(events)
        self.stats.flushes[trigger] += 1
        if not ops:
            return
        self.stats.batches += 1
        metrics = global_metrics()
        metrics.histogram(
            "ingest.batch_size", buckets=BATCH_SIZE_BUCKETS
        ).observe(len(ops))
        start = self._clock()
        self._apply_ops(ops)
        self.stats.apply_seconds += self._clock() - start
        self.stats.applied_ops += len(ops)
        metrics.counter("ingest.ops_applied").inc(len(ops))
        if self.on_batch_applied is not None:
            self.on_batch_applied(len(ops))

    # -- threaded consumer ---------------------------------------------- #

    def _consumer_loop(self) -> None:
        try:
            while True:
                with self._cond:
                    trigger = self._wait_for_work_locked()
                    if trigger is None:
                        return
                    batch: List[_Event] = []
                    while self._queue and len(batch) < self.batch_size:
                        batch.append(self._queue.popleft())
                    global_metrics().gauge("ingest.queue_depth").set(
                        len(self._queue)
                    )
                    self._inflight = True
                    # Space freed: unblock producers before applying.
                    self._cond.notify_all()
                try:
                    if batch:
                        self._apply_events(batch, trigger)
                finally:
                    with self._cond:
                        self._inflight = False
                        if self._flush_requested and not self._queue:
                            self._flush_requested = False
                        self._cond.notify_all()
        except BaseException as exc:  # propagate to the producer side
            with self._cond:
                self._error = exc
                self._inflight = False
                self._cond.notify_all()

    def _wait_for_work_locked(self) -> Optional[str]:
        """Block until a flush trigger fires; ``None`` means shut down."""
        while True:
            if self._queue:
                if self._closing:
                    return "manual"
                if self._flush_requested:
                    return "manual"
                if len(self._queue) >= self.batch_size:
                    return "size"
                if len(self._queue) >= self.queue_capacity:
                    return "pressure"
                if self.max_delay is not None:
                    age = self._clock() - self._queue[0][3]
                    if age >= self.max_delay:
                        return "age"
                    self._cond.wait(self.max_delay - age)
                    continue
            elif self._closing:
                return None
            elif self._flush_requested:
                self._flush_requested = False
                self._cond.notify_all()
            self._cond.wait(0.05 if self.max_delay is not None else None)

    def _check_error_locked(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            self._closed = True
            raise IngestError(
                f"ingest consumer failed: {error!r}"
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "threaded" if self._thread is not None else "sync"
        return (
            f"IngestPipeline({mode}, batch_size={self.batch_size}, "
            f"queued={len(self._queue)}, applied={self.stats.applied_ops})"
        )
