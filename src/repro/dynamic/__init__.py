"""Dynamic ``k_max``-truss maintenance (paper §IV) and the YLJ baselines."""

from .adjacency_file import AdjacencyFile
from .state import DynamicMaxTruss
from .deletion import delete_edge
from .insertion import insert_edge
from .batch import BatchResult, apply_batch
from .checkpoint import save_checkpoint, load_checkpoint
from .ingest import IngestPipeline, IngestStats
from .stream import BoundedHistory, SlidingWindowTruss, StreamStats
from .ylj import YLJMaintenance
from . import workload

__all__ = [
    "AdjacencyFile",
    "DynamicMaxTruss",
    "delete_edge",
    "insert_edge",
    "BatchResult",
    "apply_batch",
    "save_checkpoint",
    "load_checkpoint",
    "BoundedHistory",
    "IngestPipeline",
    "IngestStats",
    "SlidingWindowTruss",
    "StreamStats",
    "YLJMaintenance",
    "workload",
]
