"""Edge deletion maintenance — Algorithm 5.

Lemma 7 (refined to edge membership): deleting an edge outside the
``k_max``-class cannot change the class — triangles through a non-class edge
do not count toward in-class supports. For a class edge, the update is a
peeling cascade *inside the class*: triangles through the deleted edge lower
their two remaining edges' supports; edges falling below ``k_max − 2`` leave
the class breadth-first (Alg 5 lines 4–19). If the class vanishes, Lemma 6
pins the new ``k_max`` at ``k_max − 1`` and the global tier recomputes the
new class on the core-pruned candidate set (lines 20–26).
"""

from __future__ import annotations

from collections import deque
from .._util import Stopwatch
from ..core.result import MaintenanceResult
from ..errors import GraphFormatError
from .state import DynamicMaxTruss


def delete_edge(state: DynamicMaxTruss, u: int, v: int) -> MaintenanceResult:
    """Delete ``(u, v)`` from the graph and maintain the ``k_max``-class."""
    watch = Stopwatch()
    io_start = state.device.stats.snapshot()
    k_before = state.k_max
    if not state.graph.has_edge(u, v):
        raise GraphFormatError(f"cannot delete absent edge ({u}, {v})")

    in_class = state.truss_contains_edge(u, v)
    state.graph_delete(u, v)

    if not in_class:
        mode = "untouched"
        if state.k_max == 2:
            # Trivial class = all edges; drop the edge from it if tracked.
            if state.truss_contains_edge(u, v):  # pragma: no cover - guarded
                state.remove_truss_edge(u, v)
        return MaintenanceResult(
            "delete", (u, v), k_before, state.k_max, mode,
            state.device.stats.since(io_start), watch.elapsed(),
        )

    if state.k_max <= 2:
        # Triangle-free regime: class is all edges; just unlink.
        state.remove_truss_edge(u, v)
        if state.truss_edge_count() == 0:
            state.k_max = 0
        return MaintenanceResult(
            "delete", (u, v), k_before, state.k_max, "local",
            state.device.stats.since(io_start), watch.elapsed(),
        )

    mode = _local_cascade(state, u, v)
    return MaintenanceResult(
        "delete", (u, v), k_before, state.k_max, mode,
        state.device.stats.since(io_start), watch.elapsed(),
    )


def _local_cascade(state: DynamicMaxTruss, u: int, v: int) -> str:
    """Peel the class after removing in-class edge ``(u, v)``.

    Returns the resolution mode (``"local"`` or ``"global"``).
    """
    threshold = state.k_max - 2
    queue = deque()

    def note_decrement(x: int, y: int, eid: int) -> None:
        state._truss_sup[eid] -= 1
        if state._truss_sup[eid] < threshold:
            queue.append((x, y))

    # Seed: triangles through (u, v) inside the class (Alg 5 lines 5-10).
    nbrs_u = state.load_truss_neighbors(u)
    nbrs_v = state.load_truss_neighbors(v)
    small, large, a, b = (
        (nbrs_u, nbrs_v, u, v) if len(nbrs_u) <= len(nbrs_v) else (nbrs_v, nbrs_u, v, u)
    )
    common = [w for w in small if w in large and w not in (u, v)]
    state.remove_truss_edge(u, v)
    for w in common:
        note_decrement(a, w, state.truss_edge_id(a, w))
        note_decrement(b, w, state.truss_edge_id(b, w))

    # Cascade (Alg 5 lines 11-19), with the two-tier escape hatch.
    removed = 0
    while queue:
        x, y = queue.popleft()
        eid = state.truss_edge_id(x, y)
        if eid < 0:
            continue  # already peeled via another triangle
        if state.local_budget is not None and removed >= state.local_budget:
            # Affected area too large: transition to the global tier.
            state.global_phase(state.k_max - 1)
            return "global"
        nbrs_x = state.load_truss_neighbors(x)
        nbrs_y = state.load_truss_neighbors(y)
        small, large, a, b = (
            (nbrs_x, nbrs_y, x, y)
            if len(nbrs_x) <= len(nbrs_y)
            else (nbrs_y, nbrs_x, y, x)
        )
        common = [w for w in small if w in large]
        state.remove_truss_edge(x, y)
        removed += 1
        for w in common:
            note_decrement(a, w, state.truss_edge_id(a, w))
            note_decrement(b, w, state.truss_edge_id(b, w))

    if state.truss_edge_count() > 0:
        state._recharge_truss_memory()
        return "local"
    # Class vanished: Lemma 6 gives k_max - 1; recompute globally.
    state.global_phase(state.k_max - 1)
    return "global"
