"""YLJ baselines — external k-truss maintenance adapted to ``k_max``-truss.

The paper compares against the I/O-efficient *k-truss community* maintenance
of Jiang, Huang & Cheng (VLDB J 2021), labelled YLJ-Insertion /
YLJ-Deletion, implemented from the paper's description since no source is
public: the method maintains **all** trussness values and, per update, runs
a breadth-first search over the top classes to assemble a candidate set
before re-peeling it — "their limitation lies in the dependence on a
breadth-first search within the k_max-truss to identify all edges with a
trussness value of k_max" (paper Exp-4).

Reproduction note (DESIGN.md §3.4): to keep the baseline *exact* without
re-deriving the full incremental-trussness machinery, each update performs
(1) the charged candidate BFS over the ``k_max``/``k_max − 1`` classes —
the cost signature the paper attributes to YLJ — and (2) a charged
re-decomposition sweep to refresh all trussness values. Per-update work is
therefore proportional to the whole class structure rather than the local
cascade, which is exactly the gap Fig 7 measures (one to three orders of
magnitude).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._util import Stopwatch
from ..baselines.inmemory import truss_decomposition
from ..core.result import MaintenanceResult
from ..engine.context import ContextLike, resolve_context
from ..errors import GraphFormatError
from ..graph.memgraph import Graph, MutableGraph
from ..storage import BlockDevice
from .adjacency_file import AdjacencyFile

EdgePair = Tuple[int, int]


class YLJMaintenance:
    """All-trussness maintenance baseline (YLJ-Insertion / YLJ-Deletion)."""

    def __init__(
        self,
        graph: Graph,
        device: Optional[BlockDevice] = None,
        context: Optional[ContextLike] = None,
    ) -> None:
        self.context = resolve_context(context, device)
        self.device = self.context.device_for(graph.n)
        self.memory = self.context.memory
        self.graph: MutableGraph = graph.to_mutable()
        self.adj_file = AdjacencyFile(self.device, graph.degrees.tolist(), name="ylj.G")
        # Full trussness state, stable-eid keyed (preprocessing, uncharged).
        self._trussness: Dict[int, int] = {}
        if graph.m:
            values = truss_decomposition(graph)
            self._trussness = {eid: int(values[eid]) for eid in range(graph.m)}
        self.k_max = max(self._trussness.values(), default=0)
        self.memory.charge("ylj.trussness", 16 * len(self._trussness))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def truss_pairs(self) -> List[EdgePair]:
        """Current ``k_max``-class as sorted pairs."""
        pairs = [
            self.graph.endpoints(eid)
            for eid, value in self._trussness.items()
            if value == self.k_max
        ]
        return sorted(pairs)

    # ------------------------------------------------------------------ #
    # the candidate BFS the paper attributes to YLJ
    # ------------------------------------------------------------------ #

    def _candidate_bfs(self, u: int, v: int) -> int:
        """Sweep the ``k_max``/``k_max − 1`` classes reachable from the
        update site through high-trussness edges, charging adjacency reads.

        Returns the candidate-set size (diagnostics); the sweep itself is
        the dominant I/O cost of the baseline.
        """
        floor = max(self.k_max - 1, 2)
        seen_vertices = set()
        seen_edges = set()
        queue = deque((x,) for x in (u, v))
        while queue:
            (x,) = queue.popleft()
            if x in seen_vertices:
                continue
            seen_vertices.add(x)
            self.adj_file.charge_load(x)
            for y, eid in self.graph.neighbors(x).items():
                if self._trussness.get(eid, 2) >= floor:
                    seen_edges.add(eid)
                    if y not in seen_vertices:
                        queue.append((y,))
        return len(seen_edges)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        """Charged full re-decomposition sweep (exactness guarantee)."""
        frozen, eid_map = self.graph.to_graph()
        for x in range(frozen.n):
            if frozen.degree(x):
                self.adj_file.charge_load(x)
        values = truss_decomposition(frozen) if frozen.m else np.zeros(0, np.int64)
        dense_to_stable = {dense: stable for stable, dense in eid_map.items()}
        self._trussness = {
            dense_to_stable[dense]: int(values[dense]) for dense in range(frozen.m)
        }
        self.k_max = max(self._trussness.values(), default=0)
        self.memory.charge("ylj.trussness", 16 * len(self._trussness))

    def insert(self, u: int, v: int) -> MaintenanceResult:
        """YLJ-Insertion."""
        watch = Stopwatch()
        io_start = self.device.stats.snapshot()
        if self.graph.has_edge(u, v):
            raise GraphFormatError(f"edge ({u}, {v}) already present")
        k_before = self.k_max
        self.graph.insert_edge(u, v)
        self.adj_file.charge_append(u)
        self.adj_file.charge_append(v)
        self._candidate_bfs(u, v)
        self._refresh()
        return MaintenanceResult(
            "insert", (u, v), k_before, self.k_max, "global",
            self.device.stats.since(io_start), watch.elapsed(),
        )

    def delete(self, u: int, v: int) -> MaintenanceResult:
        """YLJ-Deletion."""
        watch = Stopwatch()
        io_start = self.device.stats.snapshot()
        if not self.graph.has_edge(u, v):
            raise GraphFormatError(f"cannot delete absent edge ({u}, {v})")
        k_before = self.k_max
        self._candidate_bfs(u, v)
        self.graph.delete_edge(u, v)
        self.adj_file.charge_remove(u)
        self.adj_file.charge_remove(v)
        self._refresh()
        return MaintenanceResult(
            "delete", (u, v), k_before, self.k_max, "global",
            self.device.stats.since(io_start), watch.elapsed(),
        )
