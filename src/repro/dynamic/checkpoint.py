"""Checkpointing for :class:`DynamicMaxTruss`.

A maintenance deployment runs for days (the paper's motivation: evolving
social networks); restarting from scratch means a full decomposition. A
checkpoint captures everything the state owns logically — the graph, the
current ``k_max``, the class with its in-truss supports, and the coreness
cache with its staleness counter — in one self-describing binary file.
I/O-accounting state (device counters) intentionally restarts at zero.

Format (version 2): magic/version header, then little-endian int64
sections, then a trailing CRC32 (of header + sections)::

    n, k_max, insertions_since_refresh, wal_seq,
    m,      m * (u, v, stable_eid)
    c,      c * (eid, in_truss_support)
    n_core, n_core * coreness
    crc32 (u32)

``wal_seq`` is the sequence number of the last write-ahead-log record the
state has applied (0 when checkpointing outside the WAL lifecycle); the
recovery path (:mod:`repro.persistence.recovery`) uses it to skip WAL
records the checkpoint already contains. Version-1 files (no ``wal_seq``,
no CRC) still load.

Crash safety: :func:`save_checkpoint` writes to a temporary file in the
target directory, fsyncs it, and atomically :func:`os.replace`\\ s it over
*path* — a crash mid-save can never corrupt the previous checkpoint, and
the trailing CRC rejects any torn or bit-rotted image at load time.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..engine.context import ContextLike
from ..errors import GraphFormatError
from ..graph.memgraph import Graph
from ..observability.metrics import global_metrics
from ..observability.tracer import trace_span
from ..storage import BlockDevice
from .state import DynamicMaxTruss

PathLike = Union[str, Path]

_MAGIC = 0x544B5043  # "CPKT"
_VERSION = 2
_V1 = 1
_HEADER = struct.Struct("<II")
_CRC = struct.Struct("<I")


def _pack_ints(values) -> bytes:
    return np.asarray(list(values), dtype="<i8").tobytes()


class _Reader:
    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.offset = 0

    def ints(self, count: int) -> np.ndarray:
        nbytes = 8 * count
        if self.offset + nbytes > len(self.payload):
            raise GraphFormatError("truncated checkpoint payload")
        out = np.frombuffer(
            self.payload, dtype="<i8", count=count, offset=self.offset
        ).astype(np.int64)
        self.offset += nbytes
        return out

    def one(self) -> int:
        return int(self.ints(1)[0])


def _fsync_directory(path: PathLike) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    directory = os.path.dirname(os.path.abspath(str(path))) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def save_checkpoint(
    state: DynamicMaxTruss, path: PathLike, wal_seq: int = 0
) -> int:
    """Atomically write *state* to *path*; returns the byte size written.

    The image lands via temp file + fsync + :func:`os.replace`, so *path*
    always holds either the previous intact checkpoint or the new one —
    never a torn mixture. *wal_seq* records the last applied WAL sequence
    for the recovery protocol (0 outside the WAL lifecycle).
    """
    with trace_span("checkpoint.save", kind="device", wal_seq=int(wal_seq)):
        size = _save_checkpoint_impl(state, path, wal_seq)
    metrics = global_metrics()
    metrics.counter("checkpoint.saves").inc()
    metrics.gauge("checkpoint.bytes").set(size)
    return size


def _save_checkpoint_impl(
    state: DynamicMaxTruss, path: PathLike, wal_seq: int
) -> int:
    chunks = [_HEADER.pack(_MAGIC, _VERSION)]
    chunks.append(_pack_ints([
        state.graph.n, state.k_max, state._insertions_since_refresh,
        int(wal_seq),
    ]))
    edge_rows = []
    for eid in state.graph.live_edge_ids():
        u, v = state.graph.endpoints(eid)
        edge_rows.extend((u, v, eid))
    chunks.append(_pack_ints([len(edge_rows) // 3]))
    chunks.append(_pack_ints(edge_rows))
    class_rows = []
    for eid, sup in state._truss_sup.items():
        class_rows.extend((eid, sup))
    chunks.append(_pack_ints([len(class_rows) // 2]))
    chunks.append(_pack_ints(class_rows))
    chunks.append(_pack_ints([len(state._coreness)]))
    chunks.append(_pack_ints(state._coreness))
    body = b"".join(chunks)
    payload = body + _CRC.pack(zlib.crc32(body))
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(handle, "wb") as temp:
            temp.write(payload)
            temp.flush()
            os.fsync(temp.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    _fsync_directory(path)
    return len(payload)


@dataclass(frozen=True)
class CheckpointImage:
    """The logical content of a checkpoint without the maintenance state.

    A cheap read of the sections a snapshot promoter needs — vertex count,
    ``k_max``, the WAL frontier, and the edge list — skipping the
    :class:`DynamicMaxTruss` reconstruction (class rebuild, coreness cache,
    charged adjacency rebuild) that :func:`load_checkpoint` performs.
    """

    n: int
    k_max: int
    wal_seq: int
    #: ``(m, 3)`` rows of ``(u, v, stable_eid)`` in insertion order.
    edges: np.ndarray


def read_checkpoint_image(path: PathLike) -> CheckpointImage:
    """Parse *path* into a :class:`CheckpointImage` (validates the CRC).

    Read-only and side-effect free: safe against a live checkpoint file,
    because :func:`save_checkpoint` replaces it atomically — a reader sees
    either the old intact image or the new one.
    """
    with open(path, "rb") as handle:
        payload = handle.read()
    if len(payload) < _HEADER.size:
        raise GraphFormatError(f"{path}: truncated checkpoint header")
    magic, version = _HEADER.unpack(payload[: _HEADER.size])
    if magic != _MAGIC:
        raise GraphFormatError(f"{path}: bad checkpoint magic 0x{magic:08x}")
    if version not in (_V1, _VERSION):
        raise GraphFormatError(f"{path}: unsupported checkpoint version {version}")
    if version >= _VERSION:
        if len(payload) < _HEADER.size + _CRC.size:
            raise GraphFormatError(f"{path}: truncated checkpoint trailer")
        body, (crc,) = payload[: -_CRC.size], _CRC.unpack(payload[-_CRC.size:])
        if zlib.crc32(body) != crc:
            raise GraphFormatError(f"{path}: checkpoint checksum mismatch")
        payload = body
    reader = _Reader(payload[_HEADER.size:])
    n = reader.one()
    k_max = reader.one()
    reader.one()  # insertions_since_refresh: irrelevant to the image
    wal_seq = reader.one() if version >= _VERSION else 0
    edge_count = reader.one()
    edge_rows = reader.ints(3 * edge_count).reshape(-1, 3)
    return CheckpointImage(n=n, k_max=k_max, wal_seq=wal_seq, edges=edge_rows)


def load_checkpoint(
    path: PathLike,
    device: Optional[BlockDevice] = None,
    context: Optional[ContextLike] = None,
) -> DynamicMaxTruss:
    """Restore a :class:`DynamicMaxTruss` from *path*.

    The restored state is behaviourally identical to the saved one (same
    answers, same stable edge ids); the storage context starts fresh
    unless an existing *context* (or deprecated *device*) is supplied.
    The WAL sequence recorded at save time is exposed as
    ``state.recovered_wal_seq`` (0 for version-1 checkpoints).
    """
    with trace_span("checkpoint.load", kind="device"):
        return _load_checkpoint_impl(path, device, context)


def _load_checkpoint_impl(
    path: PathLike,
    device: Optional[BlockDevice],
    context: Optional[ContextLike],
) -> DynamicMaxTruss:
    with open(path, "rb") as handle:
        payload = handle.read()
    if len(payload) < _HEADER.size:
        raise GraphFormatError(f"{path}: truncated checkpoint header")
    magic, version = _HEADER.unpack(payload[: _HEADER.size])
    if magic != _MAGIC:
        raise GraphFormatError(f"{path}: bad checkpoint magic 0x{magic:08x}")
    if version not in (_V1, _VERSION):
        raise GraphFormatError(f"{path}: unsupported checkpoint version {version}")
    if version >= _VERSION:
        if len(payload) < _HEADER.size + _CRC.size:
            raise GraphFormatError(f"{path}: truncated checkpoint trailer")
        body, (crc,) = payload[: -_CRC.size], _CRC.unpack(payload[-_CRC.size:])
        if zlib.crc32(body) != crc:
            raise GraphFormatError(f"{path}: checkpoint checksum mismatch")
        payload = body
    reader = _Reader(payload[_HEADER.size:])
    n = reader.one()
    k_max = reader.one()
    staleness = reader.one()
    wal_seq = reader.one() if version >= _VERSION else 0
    edge_count = reader.one()
    edge_rows = reader.ints(3 * edge_count).reshape(-1, 3)
    class_count = reader.one()
    class_rows = reader.ints(2 * class_count).reshape(-1, 2)
    core_count = reader.one()
    coreness = reader.ints(core_count)

    # Rebuild through the normal constructor on an empty graph, then
    # overwrite the logical state (keeps file/memory charging coherent).
    state = DynamicMaxTruss(Graph.empty(n), device=device, context=context)
    for u, v, eid in edge_rows:
        state.graph._insert_with_eid(int(u), int(v), int(eid))
    state.adj_file.charge_rebuild(
        [state.graph.degree(v) for v in range(max(state.graph.n, n))]
    )
    class_support = {int(eid): int(sup) for eid, sup in class_rows}
    rows = []
    for eid, sup in class_support.items():
        u, v = state.graph.endpoints(eid)
        rows.append((u, v, eid, sup))
    state.set_class(rows, k_max)
    state._coreness = coreness
    state._insertions_since_refresh = staleness
    state.memory.charge("dyn.coreness", coreness.nbytes)
    state.recovered_wal_seq = wal_seq
    return state
