"""Update-workload generators for maintenance experiments.

The paper's Exp-4 applies "1000 random insertions (deletions)"; real
deployments also see bursty and churn-heavy patterns. These generators
produce reproducible update streams against a starting graph, used by the
Fig 7 benchmark, the batch benchmark and the stress tests.

All generators return ``[(op, u, v), ...]`` with ``op in {"insert",
"delete"}``, consistent with :func:`repro.dynamic.batch.apply_batch`, and
guarantee the stream is *applicable in order* (no duplicate inserts, no
absent deletes) starting from the given graph.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graph.memgraph import Graph

BatchOp = Tuple[str, int, int]


def random_insertions(
    graph: Graph, count: int, seed: Optional[int] = None
) -> List[BatchOp]:
    """Uniformly random absent pairs, each inserted once (paper Exp-4)."""
    rng = np.random.default_rng(seed)
    mutable = graph.to_mutable()
    ops: List[BatchOp] = []
    guard = 0
    while len(ops) < count and guard < 200 * max(count, 1):
        guard += 1
        u = int(rng.integers(0, max(graph.n, 2)))
        v = int(rng.integers(0, max(graph.n, 2)))
        if u == v or mutable.has_edge(u, v):
            continue
        mutable.insert_edge(u, v)
        ops.append(("insert", u, v))
    return ops


def random_deletions(
    graph: Graph, count: int, seed: Optional[int] = None
) -> List[BatchOp]:
    """Uniformly sampled existing edges, each deleted once (paper Exp-4)."""
    rng = np.random.default_rng(seed)
    chosen = rng.choice(graph.m, size=min(count, graph.m), replace=False)
    return [
        ("delete", int(graph.edges[eid, 0]), int(graph.edges[eid, 1]))
        for eid in chosen
    ]


def mixed_churn(
    graph: Graph, count: int, insert_fraction: float = 0.5,
    seed: Optional[int] = None,
) -> List[BatchOp]:
    """Interleaved insertions/deletions tracking the evolving edge set."""
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError("insert_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    mutable = graph.to_mutable()
    ops: List[BatchOp] = []
    guard = 0
    while len(ops) < count and guard < 400 * max(count, 1):
        guard += 1
        want_insert = rng.random() < insert_fraction or mutable.m == 0
        if want_insert:
            u = int(rng.integers(0, max(graph.n, 2)))
            v = int(rng.integers(0, max(graph.n, 2)))
            if u == v or mutable.has_edge(u, v):
                continue
            mutable.insert_edge(u, v)
            ops.append(("insert", u, v))
        else:
            live = mutable.live_edge_ids()
            eid = live[int(rng.integers(0, len(live)))]
            u, v = mutable.endpoints(eid)
            mutable.delete_edge(u, v)
            ops.append(("delete", u, v))
    return ops


def class_targeted_deletions(
    graph: Graph, count: int, seed: Optional[int] = None
) -> List[BatchOp]:
    """Deletions drawn from the initial ``k_max``-class — the expensive
    maintenance path (in-class cascades / global recomputes)."""
    from ..baselines.inmemory import max_truss_edges

    rng = np.random.default_rng(seed)
    _, class_edges = max_truss_edges(graph)
    if not class_edges:
        return []
    chosen = rng.choice(len(class_edges), size=min(count, len(class_edges)),
                        replace=False)
    return [("delete", *class_edges[i]) for i in chosen]


def bursty_stream(
    graph: Graph,
    bursts: int,
    burst_size: int,
    seed: Optional[int] = None,
) -> List[List[BatchOp]]:
    """A sequence of churn micro-batches (for the batch-maintenance API)."""
    rng = np.random.default_rng(seed)
    mutable = graph.to_mutable()
    batches: List[List[BatchOp]] = []
    for _ in range(bursts):
        frozen, _ = mutable.to_graph()
        batch = mixed_churn(frozen, burst_size,
                            seed=int(rng.integers(0, 2**31)))
        for op, u, v in batch:
            if op == "insert":
                mutable.insert_edge(u, v)
            else:
                mutable.delete_edge(u, v)
        batches.append(batch)
    return batches


def validate_stream(graph: Graph, ops: List[BatchOp]) -> bool:
    """Check a stream is applicable in order from *graph* (tests helper)."""
    mutable = graph.to_mutable()
    for op, u, v in ops:
        if op == "insert":
            if u == v or mutable.has_edge(u, v):
                return False
            mutable.insert_edge(u, v)
        elif op == "delete":
            if not mutable.has_edge(u, v):
                return False
            mutable.delete_edge(u, v)
        else:
            return False
    return True
