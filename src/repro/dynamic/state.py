"""Dynamic ``k_max``-truss maintenance state (paper §IV).

:class:`DynamicMaxTruss` owns everything the maintenance algorithms touch:

* the evolving graph (a :class:`~repro.graph.memgraph.MutableGraph`) with a
  charged :class:`~repro.dynamic.adjacency_file.AdjacencyFile` modelling its
  on-disk adjacency;
* the current ``k_max`` and the ``k_max``-truss — edge set, *in-truss*
  supports, truss-only adjacency — with its own charged truss file (the
  paper: "we only have information about the edges in the k_max-truss");
* a cached coreness array with a sound staleness rule: one edge insertion
  raises any coreness by at most one, and deletions only lower it, so
  ``cached + insertions_since_refresh`` is always an upper bound — enough
  for the Lemma 3/9 gates, with an exact refresh only when a gate fires.

The update entry points live in :mod:`repro.dynamic.insertion` and
:mod:`repro.dynamic.deletion`; both fall back to :meth:`global_phase` —
the paper's "global-second" tier: core-pruned recomputation via the
Algorithm 3 machinery (LHDH upward peel) on the refined vertex set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.peeling import make_lhdh_heap, peel_below
from ..engine.context import ContextLike, resolve_context
from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph, MutableGraph
from ..observability.tracer import trace_span
from ..semiexternal.core_decomp import core_decomposition_inmemory
from ..semiexternal.support import compute_supports
from ..storage import BlockDevice
from .adjacency_file import AdjacencyFile

EdgePair = Tuple[int, int]


class DynamicMaxTruss:
    """Maintains the ``k_max``-truss of a graph under edge updates.

    Parameters
    ----------
    graph:
        Initial graph. The initial decomposition is not charged to any
        update (the paper likewise excludes preprocessing).
    context:
        :class:`~repro.engine.ExecutionContext` (or bare
        :class:`~repro.engine.EngineConfig`) providing the storage backend
        shared by the graph file, truss file and any global-phase scratch.
    device:
        Deprecated adapter shim: a caller-built simulated disk. Prefer
        *context*.
    local_budget:
        Optional cap on local-cascade work; beyond it the update transitions
        to the global tier (the paper's two-tiered strategy). ``None``
        inherits the context's ``work_limit`` (and when that is also
        ``None``, the local tier always runs to completion).

    Example
    -------
    >>> from repro.graph.generators import paper_example_graph
    >>> state = DynamicMaxTruss(paper_example_graph())
    >>> state.k_max
    4
    >>> state.insert(0, 4).k_max_after      # completes K5 on {0..4}
    5
    """

    def __init__(
        self,
        graph: Graph,
        device: Optional[BlockDevice] = None,
        local_budget: Optional[int] = None,
        context: Optional[ContextLike] = None,
    ) -> None:
        self.context = resolve_context(context, device)
        self.device = self.context.device_for(graph.n)
        self.memory = self.context.memory
        if local_budget is None:
            local_budget = self.context.config.work_limit
        self.local_budget = local_budget
        with self.context.span("maintain.init", kind="phase",
                               n=graph.n, m=graph.m):
            self._initialise(graph)

    def _initialise(self, graph: Graph) -> None:
        self.graph: MutableGraph = graph.to_mutable()
        self.adj_file = AdjacencyFile(
            self.device, graph.degrees.tolist(), name="dyn.G"
        )
        # --- initial truss state (uncharged preprocessing) ---
        from ..baselines.inmemory import truss_decomposition  # local import: cycle

        self.k_max = 0
        self._truss_adj: Dict[int, Dict[int, int]] = {}
        self._truss_sup: Dict[int, int] = {}
        if graph.m:
            trussness = truss_decomposition(graph)
            self.k_max = int(trussness.max())
            class_eids = np.nonzero(trussness == self.k_max)[0]
            sups = graph.edge_induced_support(class_eids)
            for frozen_eid in class_eids:
                u, v = graph.edges[frozen_eid]
                # to_mutable() preserves dense edge ids as stable ids.
                self._link_truss_edge(int(u), int(v), int(frozen_eid),
                                      sups[int(frozen_eid)])
        self.truss_file = AdjacencyFile(
            self.device, self._truss_degrees(graph.n), name="dyn.truss"
        )
        # --- coreness cache (sound upper bound under staleness) ---
        self._coreness = (
            core_decomposition_inmemory(graph)
            if graph.n
            else np.zeros(0, dtype=np.int64)
        )
        self._insertions_since_refresh = 0
        self.memory.charge("dyn.coreness", self._coreness.nbytes)
        self._recharge_truss_memory()

    # ------------------------------------------------------------------ #
    # truss bookkeeping
    # ------------------------------------------------------------------ #

    def _truss_degrees(self, n: int) -> List[int]:
        degrees = [0] * n
        for v, nbrs in self._truss_adj.items():
            if v < n:
                degrees[v] = len(nbrs)
        return degrees

    def _link_truss_edge(self, u: int, v: int, eid: int, sup: int) -> None:
        self._truss_adj.setdefault(u, {})[v] = eid
        self._truss_adj.setdefault(v, {})[u] = eid
        self._truss_sup[eid] = sup

    def _recharge_truss_memory(self) -> None:
        # dict-of-dict adjacency + support map, 3 words per directed entry.
        entries = sum(len(nbrs) for nbrs in self._truss_adj.values())
        self.memory.charge("dyn.truss_state", 24 * (entries + len(self._truss_sup)))

    def truss_contains_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is in the current ``k_max``-class."""
        return v in self._truss_adj.get(u, {})

    def truss_contains_vertex(self, v: int) -> bool:
        """Whether *v* is an endpoint of some ``k_max``-class edge."""
        return bool(self._truss_adj.get(v))

    def truss_edge_id(self, u: int, v: int) -> int:
        """Stable edge id of a class edge, or ``-1``."""
        return self._truss_adj.get(u, {}).get(v, -1)

    def load_truss_neighbors(self, v: int) -> Dict[int, int]:
        """``N_v(k_max-truss)`` with edge ids (charged truss-file read)."""
        self.truss_file.charge_load(v)
        return self._truss_adj.get(v, {})

    def load_graph_neighbors(self, v: int) -> Dict[int, int]:
        """``N_v(G)`` with edge ids (charged graph-file read)."""
        self.adj_file.charge_load(v)
        return self.graph.neighbors(v)

    def remove_truss_edge(self, u: int, v: int) -> None:
        """Unlink a class edge (charged truss-file writes)."""
        eid = self._truss_adj[u].pop(v)
        self._truss_adj[v].pop(u)
        self._truss_sup.pop(eid, None)
        self.truss_file.charge_remove(u)
        self.truss_file.charge_remove(v)

    def add_truss_edge(self, u: int, v: int, eid: int, sup: int) -> None:
        """Link a new class edge (charged truss-file writes)."""
        self._link_truss_edge(u, v, eid, sup)
        self.truss_file.charge_append(u)
        self.truss_file.charge_append(v)

    def truss_edge_count(self) -> int:
        """Number of edges in the current class."""
        return len(self._truss_sup)

    def truss_pairs(self) -> List[EdgePair]:
        """The current ``k_max``-truss as sorted ``(u, v)`` pairs."""
        pairs = set()
        for u, nbrs in self._truss_adj.items():
            for v in nbrs:
                pairs.add((min(u, v), max(u, v)))
        return sorted(pairs)

    def set_class(
        self, edges: Iterable[Tuple[int, int, int, int]], k_max: int
    ) -> None:
        """Wholesale replacement of the class: ``(u, v, eid, sup)`` rows.

        Charged as a sequential rebuild of the truss file.
        """
        self._truss_adj = {}
        self._truss_sup = {}
        for u, v, eid, sup in edges:
            self._link_truss_edge(u, v, eid, sup)
        self.k_max = k_max
        self.truss_file.charge_rebuild(self._truss_degrees(self.graph.n))
        self._recharge_truss_memory()

    # ------------------------------------------------------------------ #
    # graph mutation passthroughs (charged)
    # ------------------------------------------------------------------ #

    def graph_insert(self, u: int, v: int) -> int:
        """Insert ``(u, v)`` into the graph + adjacency file."""
        eid = self.graph.insert_edge(u, v)
        self.adj_file.charge_append(u)
        self.adj_file.charge_append(v)
        self._insertions_since_refresh += 1
        return eid

    def graph_delete(self, u: int, v: int) -> int:
        """Delete ``(u, v)`` from the graph + adjacency file."""
        eid = self.graph.delete_edge(u, v)
        self.adj_file.charge_remove(u)
        self.adj_file.charge_remove(v)
        return eid

    # ------------------------------------------------------------------ #
    # coreness cache
    # ------------------------------------------------------------------ #

    def core_upper(self, v: int) -> int:
        """A sound upper bound on ``core(v)`` under cache staleness."""
        cached = int(self._coreness[v]) if v < len(self._coreness) else 0
        bound = cached + self._insertions_since_refresh
        return min(bound, self.graph.degree(v))

    def refresh_coreness(self) -> np.ndarray:
        """Exact coreness recompute (charged as a full graph-file scan)."""
        with trace_span("coreness_refresh", kind="kernel", n=self.graph.n):
            frozen, _ = self.graph.to_graph()
            for v in range(frozen.n):
                if frozen.degree(v):
                    self.adj_file.charge_load(v)
            self._coreness = core_decomposition_inmemory(frozen)
            self._insertions_since_refresh = 0
            self.memory.charge("dyn.coreness", self._coreness.nbytes)
            return self._coreness

    # ------------------------------------------------------------------ #
    # the global-second tier
    # ------------------------------------------------------------------ #

    def global_phase(self, lower_bound: int) -> None:
        """Core-pruned recomputation of the class (Alg 5 lines 20–26 /
        Alg 6 lines 30–33): refresh coreness, keep vertices with
        ``core >= lb − 1``, and run the Algorithm 3 upward peel there.

        *lower_bound* must be a sound lower bound on the new ``k_max``
        (callers pass ``k_max`` for insertions, ``k_max − 1`` for deletions).
        """
        with trace_span("global_phase", kind="kernel",
                        lower_bound=lower_bound):
            self._global_phase_impl(lower_bound)

    def _global_phase_impl(self, lower_bound: int) -> None:
        coreness = self.refresh_coreness()
        frozen, eid_map = self.graph.to_graph()
        dense_to_stable = {dense: stable for stable, dense in eid_map.items()}
        if frozen.m == 0:
            self.set_class([], 0)
            return
        lb = max(lower_bound, 3)
        survivors: List[Tuple[int, int]] = []
        k_max = 2
        subgraph = node_map = edge_map = None
        while lb >= 3:
            keep = np.nonzero(coreness >= lb - 1)[0]
            subgraph, node_map, edge_map = frozen.subgraph_by_nodes(keep)
            if subgraph.m == 0:
                lb -= 1
                continue
            disk_sub = DiskGraph(subgraph, self.device, self.memory, name="dyn.H")
            scan = compute_supports(disk_sub, name="dyn.hsup")
            keys = scan.supports.to_numpy()
            heap = make_lhdh_heap(
                self.device, range(subgraph.m), keys,
                memory=self.memory, name="dyn.heap",
                capacity=max(1, self.graph.n),
            )
            current_k = lb
            snapshot: List[Tuple[int, int]] = []
            while True:
                peel_below(heap, disk_sub, current_k - 2)
                if len(heap) == 0:
                    break
                k_max = current_k
                snapshot = sorted(heap.live_items())
                current_k += 1
            survivors = snapshot
            heap.release()
            scan.supports.free()
            disk_sub.release()
            if k_max >= lb:
                break
            # The caller's bound was not met here (clamped-lb edge cases):
            # widen the candidate set and retry one level lower.
            lb -= 1
        if k_max <= 2:
            # No triangle-carrying truss: the class is every edge at
            # trussness 2.
            rows = []
            for stable_eid in self.graph.live_edge_ids():
                u, v = self.graph.endpoints(stable_eid)
                rows.append((u, v, stable_eid, 0))
            self.set_class(rows, 2 if rows else 0)
            return
        rows = []
        for sub_eid, sup in survivors:
            frozen_eid = int(edge_map[sub_eid])
            stable_eid = dense_to_stable[frozen_eid]
            sub_u, sub_v = subgraph.edges[sub_eid]
            u, v = int(node_map[sub_u]), int(node_map[sub_v])
            rows.append((u, v, stable_eid, int(sup)))
        self.set_class(rows, k_max)

    # ------------------------------------------------------------------ #
    # public update API (delegates to the algorithm modules)
    # ------------------------------------------------------------------ #

    def insert(self, u: int, v: int):
        """Insert edge ``(u, v)`` and maintain the class (Algorithm 6)."""
        from .insertion import insert_edge

        with self.context.span("maintain.insert", u=u, v=v):
            return insert_edge(self, u, v)

    def delete(self, u: int, v: int):
        """Delete edge ``(u, v)`` and maintain the class (Algorithm 5)."""
        from .deletion import delete_edge

        with self.context.span("maintain.delete", u=u, v=v):
            return delete_edge(self, u, v)

    def apply_batch(self, operations):
        """Apply a mixed update batch with at most one global recompute
        (see :func:`repro.dynamic.batch.apply_batch`)."""
        from .batch import apply_batch

        operations = list(operations)
        with self.context.span("maintain.batch", ops=len(operations)):
            return apply_batch(self, operations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicMaxTruss(n={self.graph.n}, m={self.graph.m}, "
            f"k_max={self.k_max}, class_edges={self.truss_edge_count()})"
        )
