"""An updatable on-disk adjacency file for the dynamic algorithms.

The static algorithms read an immutable edge file; maintenance needs an
adjacency representation that survives edge insertions and deletions. This
models the standard slack-region layout: each vertex owns a region of
``capacity >= degree`` slots; appending into remaining slack is a one-slot
write, while overflowing relocates the whole list to fresh space at the file
tail (read old region + sequential write of the new one) — exactly the I/O
a real implementation pays.

Payload truth lives in the caller's :class:`~repro.graph.memgraph.MutableGraph`;
this class owns the *accounting* (which bytes move when), in line with the
simulator contract of DESIGN.md §2.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..storage import BlockDevice

_ITEMSIZE = 8  # one int64 slot per neighbour
_MIN_SLACK = 4


class AdjacencyFile:
    """Charged I/O model of a mutable adjacency-list file."""

    def __init__(
        self,
        device: BlockDevice,
        degrees: Iterable[int],
        name: str = "adjfile",
        slack: int = _MIN_SLACK,
    ) -> None:
        self.device = device
        self.name = name
        self._slack = max(1, slack)
        degree_array = np.asarray(list(degrees), dtype=np.int64)
        self.degrees = degree_array.copy()
        self.capacity = degree_array + self._slack
        self.offsets = np.zeros(len(degree_array), dtype=np.int64)
        if len(degree_array):
            np.cumsum(self.capacity[:-1], out=self.offsets[1:])
        self._tail = int(self.capacity.sum())
        initial_bytes = max(self._tail, 1) * _ITEMSIZE
        self.extent = device.allocate(name, initial_bytes)
        # Initial materialisation: one sequential write of all lists.
        if self._tail:
            device.append_write(self.extent, 0, self._tail * _ITEMSIZE)

    # ------------------------------------------------------------------ #
    # vertex-table maintenance
    # ------------------------------------------------------------------ #

    def _ensure_vertex(self, v: int) -> None:
        if v < len(self.degrees):
            return
        extra = v + 1 - len(self.degrees)
        self.degrees = np.concatenate([self.degrees, np.zeros(extra, dtype=np.int64)])
        new_caps = np.full(extra, self._slack, dtype=np.int64)
        new_offsets = self._tail + np.concatenate(
            [[0], np.cumsum(new_caps[:-1])]
        ).astype(np.int64)
        self.capacity = np.concatenate([self.capacity, new_caps])
        self.offsets = np.concatenate([self.offsets, new_offsets])
        self._tail += int(new_caps.sum())
        self._ensure_extent()

    def _ensure_extent(self) -> None:
        needed = self._tail * _ITEMSIZE
        if needed > self.device.extent_size(self.extent):
            self.device.grow(self.extent, max(needed, 2 * self.device.extent_size(self.extent)))

    # ------------------------------------------------------------------ #
    # charged operations
    # ------------------------------------------------------------------ #

    def charge_load(self, v: int) -> None:
        """Charge reading ``N(v)`` from the file."""
        self._ensure_vertex(v)
        degree = int(self.degrees[v])
        if degree:
            self.device.touch_read(
                self.extent, int(self.offsets[v]) * _ITEMSIZE, degree * _ITEMSIZE
            )

    def charge_append(self, v: int) -> None:
        """Charge adding one neighbour to ``N(v)`` (slack write or move)."""
        self._ensure_vertex(v)
        degree = int(self.degrees[v])
        if degree + 1 <= self.capacity[v]:
            self.device.touch_write(
                self.extent,
                (int(self.offsets[v]) + degree) * _ITEMSIZE,
                _ITEMSIZE,
            )
        else:
            # Relocate: read the old region, write the doubled one at tail.
            self.device.touch_read(
                self.extent, int(self.offsets[v]) * _ITEMSIZE, degree * _ITEMSIZE
            )
            new_capacity = max(2 * degree, degree + self._slack)
            self.offsets[v] = self._tail
            self.capacity[v] = new_capacity
            self._tail += new_capacity
            self._ensure_extent()
            self.device.append_write(
                self.extent, int(self.offsets[v]) * _ITEMSIZE, (degree + 1) * _ITEMSIZE
            )
        self.degrees[v] += 1

    def charge_remove(self, v: int) -> None:
        """Charge deleting one neighbour from ``N(v)`` (swap-with-last)."""
        self._ensure_vertex(v)
        degree = int(self.degrees[v])
        if degree <= 0:
            return
        # Read the list to find the slot, then overwrite it with the tail slot.
        self.device.touch_read(
            self.extent, int(self.offsets[v]) * _ITEMSIZE, degree * _ITEMSIZE
        )
        self.device.touch_write(self.extent, int(self.offsets[v]) * _ITEMSIZE, _ITEMSIZE)
        self.degrees[v] -= 1

    def charge_rebuild(self, degrees: Iterable[int]) -> None:
        """Charge rewriting the whole file (wholesale truss refresh)."""
        degree_array = np.asarray(list(degrees), dtype=np.int64)
        self.degrees = degree_array.copy()
        self.capacity = degree_array + self._slack
        self.offsets = np.zeros(len(degree_array), dtype=np.int64)
        if len(degree_array):
            np.cumsum(self.capacity[:-1], out=self.offsets[1:])
        self._tail = int(self.capacity.sum())
        self._ensure_extent()
        if self._tail:
            self.device.append_write(self.extent, 0, self._tail * _ITEMSIZE)

    @property
    def file_slots(self) -> int:
        """Total allocated slots (including slack and dead space)."""
        return self._tail
