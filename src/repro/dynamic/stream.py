"""Sliding-window stream processing over the maintenance engine.

Streaming graph systems keep only the most recent ``window`` edges alive
(interaction networks age out). :class:`SlidingWindowTruss` feeds an edge
stream through :class:`DynamicMaxTruss`: each arrival inserts the new edge
and evicts the expired one, either per event or in micro-batches through
:func:`repro.dynamic.batch.apply_batch` (fewer global recomputes under
bursty arrival, same exact answers).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Tuple

from ..engine.context import ContextLike
from ..graph.memgraph import Graph
from ..storage import BlockDevice
from .state import DynamicMaxTruss

EdgePair = Tuple[int, int]


@dataclass
class StreamStats:
    """Counters accumulated by a sliding-window run."""

    arrivals: int = 0
    expirations: int = 0
    duplicates_skipped: int = 0
    k_max_history: List[int] = field(default_factory=list)

    @property
    def k_max_peak(self) -> int:
        """Largest ``k_max`` observed (0 if nothing processed)."""
        return max(self.k_max_history, default=0)


class SlidingWindowTruss:
    """Maintains the ``k_max``-truss of the last *window* streamed edges.

    Parameters
    ----------
    window:
        Number of most-recent edges kept alive.
    batch_size:
        1 (default) applies arrivals/expirations per event; larger values
        buffer them and flush through the batch API.

    Example
    -------
    >>> stream = SlidingWindowTruss(window=100)
    >>> for u, v in edge_source:          # doctest: +SKIP
    ...     stream.push(u, v)
    >>> stream.k_max                      # doctest: +SKIP
    """

    def __init__(
        self,
        window: int,
        batch_size: int = 1,
        device: Optional[BlockDevice] = None,
        context: Optional[ContextLike] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.window = window
        self.batch_size = batch_size
        self.state = DynamicMaxTruss(
            Graph.empty(0), device=device, context=context
        )
        self._live: Deque[EdgePair] = deque()
        self._live_set: set = set()
        self._pending: List[Tuple[str, int, int]] = []
        self.stats = StreamStats()

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #

    @property
    def k_max(self) -> int:
        """Current ``k_max`` (flushes buffered events first)."""
        self.flush()
        return self.state.k_max

    def truss_pairs(self) -> List[EdgePair]:
        """Current ``k_max``-truss (flushes buffered events first)."""
        self.flush()
        return self.state.truss_pairs()

    def live_edge_count(self) -> int:
        """Edges currently inside the window."""
        return len(self._live)

    def push(self, u: int, v: int) -> None:
        """Stream one edge arrival (duplicates of live edges are skipped)."""
        if u == v:
            raise ValueError("self-loops are not allowed in the stream")
        pair = (min(u, v), max(u, v))
        if pair in self._live_set:
            self.stats.duplicates_skipped += 1
            return
        self._live.append(pair)
        self._live_set.add(pair)
        self._pending.append(("insert", pair[0], pair[1]))
        self.stats.arrivals += 1
        if len(self._live) > self.window:
            old = self._live.popleft()
            self._live_set.discard(old)
            self._pending.append(("delete", old[0], old[1]))
            self.stats.expirations += 1
        if len(self._pending) >= self.batch_size:
            self.flush()

    def push_many(self, edges: Iterable[EdgePair]) -> None:
        """Stream a sequence of arrivals."""
        for u, v in edges:
            self.push(int(u), int(v))

    def flush(self) -> None:
        """Apply buffered events and record the resulting ``k_max``."""
        if not self._pending:
            return
        operations, self._pending = self._pending, []
        if len(operations) == 1 and self.batch_size == 1:
            op, u, v = operations[0]
            if op == "insert":
                self.state.insert(u, v)
            else:
                self.state.delete(u, v)
        else:
            self.state.apply_batch(operations)
        self.stats.k_max_history.append(self.state.k_max)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlidingWindowTruss(window={self.window}, live={len(self._live)}, "
            f"k_max={self.state.k_max})"
        )
