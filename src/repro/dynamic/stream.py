"""Sliding-window stream processing over the maintenance engine.

Streaming graph systems keep only the most recent ``window`` edges alive
(interaction networks age out). :class:`SlidingWindowTruss` feeds an edge
stream through :class:`DynamicMaxTruss`: each arrival inserts the new edge
and evicts the expired one, either per event or in micro-batches through
:func:`repro.dynamic.batch.apply_batch` (fewer global recomputes under
bursty arrival, same exact answers).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Iterator, List, Optional, Tuple

from ..engine.context import ContextLike
from ..graph.memgraph import Graph
from ..storage import BlockDevice
from .state import DynamicMaxTruss

EdgePair = Tuple[int, int]

#: Default retention of :class:`BoundedHistory` (values, not bytes).
DEFAULT_HISTORY_CAPACITY = 1024


class BoundedHistory:
    """Ring buffer of the most recent values with exact count and peak.

    A firehose run flushes millions of micro-batches; recording ``k_max``
    after every one in an unbounded list grows memory linearly with flush
    count. This ring retains the last *capacity* values for inspection
    while ``count`` (total values ever appended) and ``peak`` (largest
    value ever appended) stay exact regardless of eviction.

    Sequence access (``len``, indexing, iteration) covers the retained
    window only; negative indices address it from the newest end, so
    ``history[-1]`` is always the latest value.

    >>> h = BoundedHistory(capacity=3)
    >>> for v in (5, 9, 2, 4): h.append(v)
    >>> list(h), h[-1], h.count, h.peak
    ([9, 2, 4], 4, 4, 9)
    """

    __slots__ = ("capacity", "count", "peak", "_ring")

    def __init__(self, capacity: int = DEFAULT_HISTORY_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"history capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.peak = 0
        self._ring: Deque[int] = deque(maxlen=capacity)

    def append(self, value: int) -> None:
        """Record one value (evicting the oldest beyond capacity)."""
        self._ring.append(value)
        self.count += 1
        if value > self.peak:
            self.peak = value

    def __len__(self) -> int:
        return len(self._ring)

    def __getitem__(self, index: int) -> int:
        return self._ring[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._ring)

    def to_list(self) -> List[int]:
        """The retained window as a plain list (oldest first)."""
        return list(self._ring)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoundedHistory):
            return (
                self.count == other.count
                and self.peak == other.peak
                and self._ring == other._ring
            )
        if isinstance(other, (list, tuple)):
            return self.to_list() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BoundedHistory(capacity={self.capacity}, count={self.count}, "
            f"peak={self.peak}, retained={len(self._ring)})"
        )


@dataclass
class StreamStats:
    """Counters accumulated by a sliding-window run."""

    arrivals: int = 0
    expirations: int = 0
    duplicates_skipped: int = 0
    k_max_history: BoundedHistory = field(default_factory=BoundedHistory)

    @property
    def k_max_peak(self) -> int:
        """Largest ``k_max`` observed (0 if nothing processed) — exact
        even after the history ring has evicted the peak flush."""
        return self.k_max_history.peak


class SlidingWindowTruss:
    """Maintains the ``k_max``-truss of the last *window* streamed edges.

    Parameters
    ----------
    window:
        Number of most-recent edges kept alive.
    batch_size:
        1 (default) applies arrivals/expirations per event; larger values
        buffer them and flush through the batch API.
    history_capacity:
        Retained ``k_max`` samples in ``stats.k_max_history`` (count and
        peak stay exact beyond it).

    Example
    -------
    >>> stream = SlidingWindowTruss(window=100)
    >>> for u, v in edge_source:          # doctest: +SKIP
    ...     stream.push(u, v)
    >>> stream.k_max                      # doctest: +SKIP
    """

    def __init__(
        self,
        window: int,
        batch_size: int = 1,
        device: Optional[BlockDevice] = None,
        context: Optional[ContextLike] = None,
        history_capacity: int = DEFAULT_HISTORY_CAPACITY,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.window = window
        self.batch_size = batch_size
        self.state = DynamicMaxTruss(
            Graph.empty(0), device=device, context=context
        )
        self._live: Deque[EdgePair] = deque()
        self._live_set: set = set()
        self._pending: List[Tuple[str, int, int]] = []
        self.stats = StreamStats(
            k_max_history=BoundedHistory(history_capacity)
        )

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #

    @property
    def k_max(self) -> int:
        """Current ``k_max`` (flushes buffered events first)."""
        self.flush()
        return self.state.k_max

    def truss_pairs(self) -> List[EdgePair]:
        """Current ``k_max``-truss (flushes buffered events first)."""
        self.flush()
        return self.state.truss_pairs()

    def live_edge_count(self) -> int:
        """Edges currently inside the window."""
        return len(self._live)

    def push(self, u: int, v: int) -> None:
        """Stream one edge arrival (duplicates of live edges are skipped)."""
        if u == v:
            raise ValueError("self-loops are not allowed in the stream")
        pair = (min(u, v), max(u, v))
        if pair in self._live_set:
            self.stats.duplicates_skipped += 1
            return
        self._live.append(pair)
        self._live_set.add(pair)
        self._pending.append(("insert", pair[0], pair[1]))
        self.stats.arrivals += 1
        if len(self._live) > self.window:
            old = self._live.popleft()
            self._live_set.discard(old)
            self._pending.append(("delete", old[0], old[1]))
            self.stats.expirations += 1
        if len(self._pending) >= self.batch_size:
            self.flush()

    def push_many(self, edges: Iterable[EdgePair]) -> None:
        """Stream a sequence of arrivals."""
        for u, v in edges:
            self.push(int(u), int(v))

    def flush(self) -> None:
        """Apply buffered events and record the resulting ``k_max``."""
        if not self._pending:
            return
        operations, self._pending = self._pending, []
        if len(operations) == 1 and self.batch_size == 1:
            op, u, v = operations[0]
            if op == "insert":
                self.state.insert(u, v)
            else:
                self.state.delete(u, v)
        else:
            self.state.apply_batch(operations)
        self.stats.k_max_history.append(self.state.k_max)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlidingWindowTruss(window={self.window}, live={len(self._live)}, "
            f"k_max={self.state.k_max})"
        )
