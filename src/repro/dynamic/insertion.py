"""Edge insertion maintenance — Algorithms 6 and 7.

Lemma 9 splits the work:

* **cheap gate** — the new edge's trussness upper bound
  ``min(sup(u,v) + 2, min(core(u), core(v)) + 1)`` is below ``k_max``: no
  edge can join the class (any certificate raising an edge to ``k_max``
  must contain ``(u, v)`` itself), so nothing changes;
* **case 1 (edge lands inside the class)** — a ``(k_max+1)``-truss can only
  consist of old class edges plus ``(u, v)`` (Lemma 6 caps everyone else at
  ``k_max``), so the k-level-triangle test and hypothetical peel (Alg 6
  lines 4–29) run entirely on the class, with support rollback (the set
  ``S``) when the hypothesis fails;
* **case 2 / growth fallback** — when the gate passes but no
  ``(k_max+1)``-truss forms, previously-outside edges with trussness
  ``k_max − 1`` may still join the class; the paper's printed pseudo-code
  leaves this path implicit, so (as recorded in DESIGN.md §3.4) we resolve
  it exactly with the global-second tier: core-pruned recomputation at
  ``lb = k_max``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from .._util import Stopwatch
from ..core.result import MaintenanceResult
from ..errors import GraphFormatError
from .state import DynamicMaxTruss


def insert_edge(state: DynamicMaxTruss, u: int, v: int) -> MaintenanceResult:
    """Insert ``(u, v)`` into the graph and maintain the ``k_max``-class."""
    watch = Stopwatch()
    io_start = state.device.stats.snapshot()
    k_before = state.k_max
    if u == v:
        raise GraphFormatError("self-loops are not allowed")
    if state.graph.has_edge(u, v):
        raise GraphFormatError(f"edge ({u}, {v}) already present")

    eid = state.graph_insert(u, v)

    if state.k_max <= 2:
        mode = _bootstrap_insert(state, u, v, eid)
    else:
        mode = _maintain_insert(state, u, v, eid)

    return MaintenanceResult(
        "insert", (u, v), k_before, state.k_max, mode,
        state.device.stats.since(io_start), watch.elapsed(),
    )


def _support_in_graph(state: DynamicMaxTruss, u: int, v: int) -> int:
    """``sup((u, v))`` in the full graph (charged neighbourhood loads)."""
    nbrs_u = state.load_graph_neighbors(u)
    nbrs_v = state.load_graph_neighbors(v)
    small, large = (nbrs_u, nbrs_v) if len(nbrs_u) <= len(nbrs_v) else (nbrs_v, nbrs_u)
    return sum(1 for w in small if w in large)


def _bootstrap_insert(state: DynamicMaxTruss, u: int, v: int, eid: int) -> str:
    """Insertion while ``k_max <= 2`` (the class is every edge)."""
    if _support_in_graph(state, u, v) > 0:
        # First triangle(s): k_max jumps to at least 3.
        state.global_phase(3)
        return "global"
    state.add_truss_edge(u, v, eid, 0)
    state.k_max = 2
    return "local"


def _maintain_insert(state: DynamicMaxTruss, u: int, v: int, eid: int) -> str:
    support = _support_in_graph(state, u, v)
    upper = min(
        support + 2,
        min(state.core_upper(u), state.core_upper(v)) + 1,
    )
    if upper < state.k_max:
        return "untouched"
    # The cheap bound passed on possibly-stale coreness; refresh and retest
    # before doing any heavy work (sound: refresh only lowers the bound).
    if state._insertions_since_refresh > 1:
        coreness = state.refresh_coreness()
        upper = min(
            support + 2, min(int(coreness[u]), int(coreness[v])) + 1
        )
        if upper < state.k_max:
            return "untouched"

    if state.truss_contains_vertex(u) and state.truss_contains_vertex(v):
        promoted = _try_promote(state, u, v, eid)
        if promoted:
            return "local"
    # Growth at the current k_max is possible: recompute exactly on the
    # core-pruned candidate set (Alg 6 lines 30-33).
    state.global_phase(state.k_max)
    return "global"


def _try_promote(state: DynamicMaxTruss, u: int, v: int, eid: int) -> bool:
    """Case 1: test for a ``(k_max+1)``-truss inside class ∪ {(u, v)}.

    Returns ``True`` (state updated, ``k_max`` incremented) when the
    hypothesis holds; ``False`` leaves the state untouched (rollback).
    """
    k_max = state.k_max
    nbrs_u = state.load_truss_neighbors(u)
    nbrs_v = state.load_truss_neighbors(v)
    small, large, a, b = (
        (nbrs_u, nbrs_v, u, v) if len(nbrs_u) <= len(nbrs_v) else (nbrs_v, nbrs_u, v, u)
    )
    common = [w for w in small if w in large]

    # Candidate supports: class supports + the new edge's triangles.
    sup: Dict[int, int] = dict(state._truss_sup)
    adj: Dict[int, Dict[int, int]] = {
        x: dict(nbrs) for x, nbrs in state._truss_adj.items()
    }
    adj.setdefault(u, {})[v] = eid
    adj.setdefault(v, {})[u] = eid
    sup[eid] = len(common)
    for w in common:
        sup[adj[a][w]] += 1
        sup[adj[b][w]] += 1

    # k-level triangle count |Δ^{k_max+1}_{(u,v)}| (Definition 8): triangles
    # whose two other edges both reach support k_max - 1 in the candidate.
    strong = sum(
        1
        for w in common
        if sup[adj[u][w]] >= k_max - 1 and sup[adj[v][w]] >= k_max - 1
    )
    if strong < k_max - 1:
        return False  # Alg 6 line 12: no (k_max+1)-truss can form

    # Hypothetical peel at threshold k_max - 1 on the candidate copy.
    threshold = k_max - 1
    queue = deque(
        (x, y) for x, nbrs in adj.items() for y in nbrs
        if x < y and sup[nbrs[y]] < threshold
    )
    while queue:
        x, y = queue.popleft()
        edge = adj.get(x, {}).get(y)
        if edge is None:
            continue
        nbrs_x, nbrs_y = adj.get(x, {}), adj.get(y, {})
        small2, large2, c, d = (
            (nbrs_x, nbrs_y, x, y)
            if len(nbrs_x) <= len(nbrs_y)
            else (nbrs_y, nbrs_x, y, x)
        )
        common2 = [w for w in small2 if w in large2]
        del adj[x][y]
        del adj[y][x]
        sup.pop(edge, None)
        for w in common2:
            for other in (adj[c][w], adj[d][w]):
                sup[other] -= 1
                if sup[other] < threshold:
                    pair = state.graph.endpoints(other)
                    queue.append(pair)
        # Charged: the hypothetical peel reads the class file per kernel.
        state.truss_file.charge_load(x)
        state.truss_file.charge_load(y)

    if not sup:
        return False  # hypothesis failed; original state untouched (set S)

    rows = []
    for x, nbrs in adj.items():
        for y, edge in nbrs.items():
            if x < y:
                rows.append((x, y, edge, sup[edge]))
    state.set_class(rows, k_max + 1)
    return True
