"""Batch maintenance of the ``k_max``-truss.

The paper's related work covers batch truss maintenance (Luo et al.), and
its own two-tier design generalises naturally: when a burst of updates
arrives, per-update cascades waste work — several updates may each trigger
a global recomputation that a single one would cover.

:func:`apply_batch` applies a mixed stream of insertions/deletions with one
decision at the end:

* the batch is first **coalesced**: a net-zero pair (an edge inserted and
  deleted within the same batch, in either order) cancels before touching
  the graph, so a bursty stream's churn never inflates the mutation count,
  the deletion bound, or the gate probes;
* cheap gates run per surviving insertion exactly as in Algorithms 5/6
  (Lemma 7's class membership for deletions, Lemma 9's upper bound for
  insertions), with neighbourhood loads deduplicated per endpoint — a
  vertex touched by many batch insertions is read once;
* if **no** update passed its gate, the class is provably unchanged — total
  cost is the graph mutations plus the gate probes;
* otherwise a **single** global phase recomputes the class with the sound
  Lemma 6 batch bound: after ``d`` *net* deletions and ``i`` insertions,
  ``k_max_new >= k_max − d`` — so the candidate set is pruned at
  ``core >= k_max − d − 1`` and one upward peel settles everything.
  Coalescing shrinks ``d``, which tightens the bound and the candidate set.

The result is always exact (property-tested against per-op maintenance and
against recomputation from scratch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .._util import Stopwatch
from ..errors import GraphFormatError
from ..storage import IOStats
from .state import DynamicMaxTruss

#: ("insert" | "delete", u, v)
BatchOp = Tuple[str, int, int]


@dataclass
class BatchResult:
    """Outcome of one :func:`apply_batch` call."""

    operations: int
    insertions: int
    deletions: int
    k_max_before: int
    k_max_after: int
    mode: str  # "untouched" | "global"
    io: IOStats = field(default_factory=IOStats)
    elapsed_seconds: float = 0.0
    cancelled_ops: int = 0  #: ops dropped by net-zero pair coalescing
    gate_probes: int = 0    #: insertion gates evaluated (post-dedupe)


def _coalesce(
    state: DynamicMaxTruss, ops: List[BatchOp]
) -> Tuple[List[BatchOp], int]:
    """Validate *ops* against the current graph and cancel net-zero pairs.

    Walks the batch once, simulating per-pair membership: an operation
    that conflicts with the evolving state (duplicate insert, absent
    delete, unknown opcode) raises :class:`~repro.errors.GraphFormatError`
    *before anything is applied* — a rejected batch leaves the graph
    untouched. Pairs whose final membership equals their initial one
    (insert+delete or delete+insert sequences) are dropped wholesale: the
    final edge *set* is what the decomposition depends on, and an edge
    that survives a delete+insert round trip keeps its stable id, class
    membership and supports, so skipping the churn is exact. Surviving
    pairs contribute exactly one net operation, in first-touch order.
    """
    initial: Dict[Tuple[int, int], bool] = {}
    current: Dict[Tuple[int, int], bool] = {}
    last_op: Dict[Tuple[int, int], BatchOp] = {}
    order: List[Tuple[int, int]] = []
    for op, u, v in ops:
        if op not in ("insert", "delete"):
            raise GraphFormatError(f"unknown batch operation {op!r}")
        pair = (u, v) if u <= v else (v, u)
        if pair not in initial:
            present = state.graph.has_edge(u, v)
            initial[pair] = present
            order.append(pair)
        else:
            present = current[pair]
        if op == "insert":
            if present:
                raise GraphFormatError(
                    f"batch insert of existing edge ({u}, {v})"
                )
            current[pair] = True
        else:
            if not present:
                raise GraphFormatError(
                    f"batch delete of absent edge ({u}, {v})"
                )
            current[pair] = False
        last_op[pair] = (op, u, v)
    net = [last_op[pair] for pair in order if current[pair] != initial[pair]]
    return net, len(ops) - len(net)


def apply_batch(state: DynamicMaxTruss, operations: Iterable[BatchOp]) -> BatchResult:
    """Apply *operations* to *state* with at most one global recomputation.

    The batch is atomic with respect to validation: an operation that
    conflicts with the graph state it would see (duplicate insert, absent
    delete) raises :class:`~repro.errors.GraphFormatError` before any
    mutation, leaving the graph exactly as it was.
    """
    watch = Stopwatch()
    io_start = state.device.stats.snapshot()
    k_before = state.k_max

    ops = list(operations)
    net_ops, cancelled = _coalesce(state, ops)

    insertions = 0
    deletions = 0
    class_deletions = 0
    for op, u, v in net_ops:
        if op == "insert":
            state.graph_insert(u, v)
            insertions += 1
        else:
            if state.truss_contains_edge(u, v):
                class_deletions += 1
                state.remove_truss_edge(u, v)
            state.graph_delete(u, v)
            deletions += 1

    # Gate the insertions once, after all mutations (supports/cores final).
    # Neighbourhood loads are deduplicated per endpoint: the batch's gate
    # phase reads each touched vertex at most once, and the loop stops the
    # moment one insertion passes its gate — the batch outcome is decided.
    gated_insertion = False
    gate_probes = 0
    neighbors: Dict[int, Dict[int, int]] = {}

    def _load(v: int) -> Dict[int, int]:
        cached = neighbors.get(v)
        if cached is None:
            cached = neighbors[v] = state.load_graph_neighbors(v)
        return cached

    for op, u, v in net_ops:
        if op != "insert":
            continue
        nbrs_u, nbrs_v = _load(u), _load(v)
        small, large = (
            (nbrs_u, nbrs_v) if len(nbrs_u) <= len(nbrs_v) else (nbrs_v, nbrs_u)
        )
        support = sum(1 for w in small if w in large)
        upper = min(
            support + 2,
            min(state.core_upper(u), state.core_upper(v)) + 1,
        )
        gate_probes += 1
        if state.k_max <= 2 and support > 0:
            gated_insertion = True
        elif upper >= state.k_max:
            gated_insertion = True
        if gated_insertion:
            break

    if class_deletions == 0 and not gated_insertion:
        # Provably no class change; track trivial-class growth at k_max <= 2.
        if state.k_max <= 2 and net_ops:
            _sync_trivial_class(state)
        return BatchResult(
            len(ops), insertions, deletions, k_before, state.k_max,
            "untouched", state.device.stats.since(io_start), watch.elapsed(),
            cancelled_ops=cancelled, gate_probes=gate_probes,
        )

    lower_bound = max(3, state.k_max - deletions)
    state.global_phase(lower_bound)
    return BatchResult(
        len(ops), insertions, deletions, k_before, state.k_max,
        "global", state.device.stats.since(io_start), watch.elapsed(),
        cancelled_ops=cancelled, gate_probes=gate_probes,
    )


def _sync_trivial_class(state: DynamicMaxTruss) -> None:
    """At k_max <= 2 the class is *all* edges; rebuild it after mutations."""
    rows: List[Tuple[int, int, int, int]] = []
    for eid in state.graph.live_edge_ids():
        u, v = state.graph.endpoints(eid)
        rows.append((u, v, eid, 0))
    state.set_class(rows, 2 if rows else 0)
