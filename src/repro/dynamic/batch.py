"""Batch maintenance of the ``k_max``-truss.

The paper's related work covers batch truss maintenance (Luo et al.), and
its own two-tier design generalises naturally: when a burst of updates
arrives, per-update cascades waste work — several updates may each trigger
a global recomputation that a single one would cover.

:func:`apply_batch` applies a mixed stream of insertions/deletions with one
decision at the end:

* cheap gates run per update exactly as in Algorithms 5/6 (Lemma 7's class
  membership for deletions, Lemma 9's upper bound for insertions);
* if **no** update passed its gate, the class is provably unchanged — total
  cost is the graph mutations plus the gate probes;
* otherwise a **single** global phase recomputes the class with the sound
  Lemma 6 batch bound: after ``d`` deletions and ``i`` insertions,
  ``k_max_new >= k_max − d`` — so the candidate set is pruned at
  ``core >= k_max − d − 1`` and one upward peel settles everything.

The result is always exact (property-tested against per-op maintenance and
against recomputation from scratch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from .._util import Stopwatch
from ..errors import GraphFormatError
from ..storage import IOStats
from .state import DynamicMaxTruss

#: ("insert" | "delete", u, v)
BatchOp = Tuple[str, int, int]


@dataclass
class BatchResult:
    """Outcome of one :func:`apply_batch` call."""

    operations: int
    insertions: int
    deletions: int
    k_max_before: int
    k_max_after: int
    mode: str  # "untouched" | "global"
    io: IOStats = field(default_factory=IOStats)
    elapsed_seconds: float = 0.0


def apply_batch(state: DynamicMaxTruss, operations: Iterable[BatchOp]) -> BatchResult:
    """Apply *operations* to *state* with at most one global recomputation.

    Operations are applied in order; an operation that conflicts with the
    current graph state (duplicate insert, absent delete) raises
    :class:`~repro.errors.GraphFormatError` and leaves the remaining
    operations unapplied (the graph reflects the prefix).
    """
    watch = Stopwatch()
    io_start = state.device.stats.snapshot()
    k_before = state.k_max
    insertions = 0
    deletions = 0
    class_deletions = 0
    gated_insertion = False

    ops = list(operations)
    for op, u, v in ops:
        if op == "insert":
            if state.graph.has_edge(u, v):
                raise GraphFormatError(f"batch insert of existing edge ({u}, {v})")
            state.graph_insert(u, v)
            insertions += 1
        elif op == "delete":
            if not state.graph.has_edge(u, v):
                raise GraphFormatError(f"batch delete of absent edge ({u}, {v})")
            if state.truss_contains_edge(u, v):
                class_deletions += 1
                state.remove_truss_edge(u, v)
            state.graph_delete(u, v)
            deletions += 1
        else:
            raise GraphFormatError(f"unknown batch operation {op!r}")

    # Gate the insertions once, after all mutations (supports/cores final).
    for op, u, v in ops:
        if op != "insert" or gated_insertion:
            continue
        if not state.graph.has_edge(u, v):
            continue  # inserted then deleted within the batch
        support = _support(state, u, v)
        upper = min(
            support + 2,
            min(state.core_upper(u), state.core_upper(v)) + 1,
        )
        if state.k_max <= 2 and support > 0:
            gated_insertion = True
        elif upper >= state.k_max:
            gated_insertion = True

    if class_deletions == 0 and not gated_insertion:
        # Provably no class change; track trivial-class growth at k_max <= 2.
        if state.k_max <= 2:
            _sync_trivial_class(state)
        return BatchResult(
            len(ops), insertions, deletions, k_before, state.k_max,
            "untouched", state.device.stats.since(io_start), watch.elapsed(),
        )

    lower_bound = max(3, state.k_max - deletions)
    state.global_phase(lower_bound)
    return BatchResult(
        len(ops), insertions, deletions, k_before, state.k_max,
        "global", state.device.stats.since(io_start), watch.elapsed(),
    )


def _support(state: DynamicMaxTruss, u: int, v: int) -> int:
    nbrs_u = state.load_graph_neighbors(u)
    nbrs_v = state.load_graph_neighbors(v)
    small, large = (nbrs_u, nbrs_v) if len(nbrs_u) <= len(nbrs_v) else (nbrs_v, nbrs_u)
    return sum(1 for w in small if w in large)


def _sync_trivial_class(state: DynamicMaxTruss) -> None:
    """At k_max <= 2 the class is *all* edges; rebuild it after mutations."""
    rows: List[Tuple[int, int, int, int]] = []
    for eid in state.graph.live_edge_ids():
        u, v = state.graph.endpoints(eid)
        rows.append((u, v, eid, 0))
    state.set_class(rows, 2 if rows else 0)
