"""Analyses supporting Exp-5/6, the case study, and the FPT motivation."""

from .degeneracy import degeneracy, degeneracy_ordering, kmax_vs_degeneracy_gap, compare
from .cliques import maximum_clique, clique_number, maximum_core
from .clique_listing import (
    maximal_cliques,
    list_k_cliques,
    count_k_cliques,
    triangle_list,
)
from .components import (
    DisjointSet,
    vertex_connected_components,
    triangle_connected_components,
    split_max_truss,
)
from .statistics import GraphStats, graph_stats, kmax_distribution, degeneracy_comparison
from .robustness import AttackTrace, edge_deletion_attack, resilience_summary
from .hierarchy import TrussHierarchy

__all__ = [
    "degeneracy",
    "degeneracy_ordering",
    "kmax_vs_degeneracy_gap",
    "compare",
    "maximum_clique",
    "clique_number",
    "maximum_core",
    "maximal_cliques",
    "list_k_cliques",
    "count_k_cliques",
    "triangle_list",
    "DisjointSet",
    "vertex_connected_components",
    "triangle_connected_components",
    "split_max_truss",
    "GraphStats",
    "graph_stats",
    "kmax_distribution",
    "degeneracy_comparison",
    "AttackTrace",
    "edge_deletion_attack",
    "resilience_summary",
    "TrussHierarchy",
]
