"""Dataset statistics — the Table I / Fig 8 computations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..baselines.inmemory import max_truss_edges
from ..graph.memgraph import Graph
from .degeneracy import degeneracy, kmax_vs_degeneracy_gap


@dataclass
class GraphStats:
    """One Table I row: basic sizes plus ``k_max`` and degeneracy ``δ``."""

    name: str
    n: int
    m: int
    k_max: int
    degeneracy: int
    triangles: int
    max_degree: int

    @property
    def gap(self) -> float:
        """Fig 8 (b): ``(c_max − k_max) / c_max``."""
        return kmax_vs_degeneracy_gap(self.k_max, self.degeneracy)

    def row(self) -> str:
        """Fixed-width textual row for the benchmark harness tables."""
        return (
            f"{self.name:<16} {self.n:>8} {self.m:>9} {self.k_max:>6} "
            f"{self.degeneracy:>6} {self.triangles:>9} {self.max_degree:>6}"
        )


def graph_stats(graph: Graph, name: str = "graph") -> GraphStats:
    """Compute a :class:`GraphStats` row for one graph."""
    k_max, _ = max_truss_edges(graph)
    return GraphStats(
        name=name,
        n=graph.n,
        m=graph.m,
        k_max=k_max,
        degeneracy=degeneracy(graph),
        triangles=graph.triangle_count(),
        max_degree=graph.max_degree,
    )


def kmax_distribution(stats: Iterable[GraphStats], buckets: Optional[List[int]] = None) -> Dict[str, int]:
    """Histogram of ``k_max`` values across graphs (Fig 8 (a)).

    Default buckets follow the paper's reading: most graphs below 200.
    """
    edges = buckets if buckets is not None else [10, 50, 100, 200, 500, 1000]
    labels = []
    previous = 0
    for edge in edges:
        labels.append(f"[{previous},{edge})")
        previous = edge
    labels.append(f"[{previous},inf)")
    histogram = {label: 0 for label in labels}
    for stat in stats:
        placed = False
        previous = 0
        for edge, label in zip(edges, labels):
            if previous <= stat.k_max < edge:
                histogram[label] += 1
                placed = True
                break
            previous = edge
        if not placed:
            histogram[labels[-1]] += 1
    return histogram


def degeneracy_comparison(stats: Iterable[GraphStats]) -> Dict[str, float]:
    """Fig 8 (b) summary: fractions of graphs by ``k_max`` vs ``c_max``."""
    stats = list(stats)
    total = len(stats)
    if total == 0:
        return {"kmax_below_cmax": 0.0, "kmax_equals_cmax_plus_1": 0.0, "mean_gap": 0.0}
    below = sum(1 for s in stats if s.k_max < s.degeneracy)
    worst = sum(1 for s in stats if s.k_max == s.degeneracy + 1)
    mean_gap = sum(s.gap for s in stats) / total
    return {
        "kmax_below_cmax": below / total,
        "kmax_equals_cmax_plus_1": worst / total,
        "mean_gap": mean_gap,
    }
