"""Connectivity semantics for truss results.

Definition 2 in the paper makes a k-truss a maximal *connected* subgraph;
the ``k_max``-truss (Definition 5: the top k-class) may therefore consist of
several connected k-trusses. This module splits an edge set into:

* **vertex-connected components** — ordinary connectivity of the subgraph;
* **triangle-connected components** — the stronger equivalence used by
  truss-community work (Huang et al., cited by the paper): two edges are
  related when they share a triangle inside the set; communities are the
  transitive closure. Triangle connectivity is what k-truss community
  search returns, so :mod:`repro.applications.community` builds on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

EdgePair = Tuple[int, int]


class DisjointSet:
    """Union-find with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}

    def find(self, item: int) -> int:
        """Representative of *item*'s set (auto-registers singletons)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of *a* and *b*; returns the new root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def groups(self) -> List[List[int]]:
        """All sets, each as a sorted list."""
        buckets: Dict[int, List[int]] = {}
        for item in self._parent:
            buckets.setdefault(self.find(item), []).append(item)
        return sorted(sorted(members) for members in buckets.values())


def _adjacency(edges: Sequence[EdgePair]) -> Dict[int, Dict[int, int]]:
    adjacency: Dict[int, Dict[int, int]] = {}
    for eid, (u, v) in enumerate(edges):
        adjacency.setdefault(u, {})[v] = eid
        adjacency.setdefault(v, {})[u] = eid
    return adjacency


def vertex_connected_components(edges: Sequence[EdgePair]) -> List[List[EdgePair]]:
    """Split an edge set by ordinary (vertex) connectivity.

    Returns components as sorted edge lists, largest-first then lexicographic.
    """
    edges = sorted(set((min(u, v), max(u, v)) for u, v in edges))
    dsu = DisjointSet()
    for u, v in edges:
        dsu.union(u, v)
    buckets: Dict[int, List[EdgePair]] = {}
    for u, v in edges:
        buckets.setdefault(dsu.find(u), []).append((u, v))
    return sorted(buckets.values(), key=lambda c: (-len(c), c))

def triangle_connected_components(edges: Sequence[EdgePair]) -> List[List[EdgePair]]:
    """Split an edge set into triangle-connected classes.

    Two edges belong together when a chain of triangles (each inside the
    edge set) links them. Edges in no triangle form singleton classes.
    """
    edges = sorted(set((min(u, v), max(u, v)) for u, v in edges))
    adjacency = _adjacency(edges)
    dsu = DisjointSet()
    for eid in range(len(edges)):
        dsu.find(eid)  # register even triangle-free edges
    for eid, (u, v) in enumerate(edges):
        nbrs_u, nbrs_v = adjacency[u], adjacency[v]
        small, large = (nbrs_u, nbrs_v) if len(nbrs_u) <= len(nbrs_v) else (nbrs_v, nbrs_u)
        for w in small:
            if w in large:
                dsu.union(eid, small[w])
                dsu.union(eid, large[w])
    buckets: Dict[int, List[EdgePair]] = {}
    for eid in range(len(edges)):
        buckets.setdefault(dsu.find(eid), []).append(edges[eid])
    return sorted(buckets.values(), key=lambda c: (-len(c), c))


def split_max_truss(edges: Iterable[EdgePair]) -> List[List[EdgePair]]:
    """The paper's Definition-2 view of a ``k_max``-class: its maximal
    connected k-trusses (vertex connectivity)."""
    return vertex_connected_components(list(edges))
