"""The truss hierarchy: every k-class of a graph as one queryable object.

Truss decomposition induces a nested hierarchy (Definition 4's k-classes):
``k-truss edges = union of classes >= k``, and the communities at level k
refine those at k − 1. :class:`TrussHierarchy` materialises the whole
structure once (one decomposition) and then answers, in memory and O(1)-ish:

* ``trussness(u, v)`` — τ of one edge;
* ``k_truss_edges(k)`` — the maximal k-truss edge set;
* ``communities(k)`` — its connected components (Definition 2's view);
* ``containment_chain(u, v)`` — the community of the edge at every level
  from 3 up to its trussness (the "zoom-in" navigation community-search
  UIs expose);
* ``level_profile()`` — class sizes per k (the decomposition's shape).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..baselines.inmemory import truss_decomposition
from ..graph.memgraph import Graph
from .components import vertex_connected_components

EdgePair = Tuple[int, int]


class TrussHierarchy:
    """A frozen, fully-indexed truss decomposition of one graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._trussness = (
            truss_decomposition(graph) if graph.m else np.zeros(0, dtype=np.int64)
        )
        self.k_max = int(self._trussness.max()) if graph.m else 0
        # Edge ids sorted by descending trussness for fast level slicing.
        self._order = np.argsort(self._trussness)[::-1]
        self._sorted_values = self._trussness[self._order]
        self._community_cache: Dict[int, List[List[EdgePair]]] = {}

    # ------------------------------------------------------------------ #
    # point queries
    # ------------------------------------------------------------------ #

    def trussness(self, u: int, v: int) -> int:
        """τ((u, v)); raises ``KeyError`` for absent edges."""
        eid = self.graph.edge_id(u, v)
        if eid < 0:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return int(self._trussness[eid])

    def trussness_values(self) -> np.ndarray:
        """The full per-edge trussness array (copy)."""
        return self._trussness.copy()

    # ------------------------------------------------------------------ #
    # level queries
    # ------------------------------------------------------------------ #

    def _edge_ids_at_least(self, k: int) -> np.ndarray:
        # sorted_values is descending; count entries >= k via the
        # ascending reverse view.
        ascending = self._sorted_values[::-1]
        below = int(np.searchsorted(ascending, k, side="left"))
        count = len(ascending) - below
        return self._order[:count]

    def k_truss_edges(self, k: int) -> List[EdgePair]:
        """Edges of the maximal k-truss (classes ``>= k``), sorted."""
        if k < 2:
            raise ValueError("k must be at least 2")
        ids = self._edge_ids_at_least(k)
        return sorted(
            (int(self.graph.edges[eid, 0]), int(self.graph.edges[eid, 1]))
            for eid in ids
        )

    def k_class_edges(self, k: int) -> List[EdgePair]:
        """Edges with trussness exactly *k* (Definition 4), sorted."""
        ids = np.nonzero(self._trussness == k)[0]
        return sorted(
            (int(self.graph.edges[eid, 0]), int(self.graph.edges[eid, 1]))
            for eid in ids
        )

    def communities(self, k: int) -> List[List[EdgePair]]:
        """Connected components of the k-truss (cached per level)."""
        if k not in self._community_cache:
            self._community_cache[k] = vertex_connected_components(
                self.k_truss_edges(k)
            )
        return self._community_cache[k]

    def level_profile(self) -> Dict[int, int]:
        """``k -> |k-class|`` over all non-empty classes."""
        profile: Dict[int, int] = {}
        for value in self._trussness:
            profile[int(value)] = profile.get(int(value), 0) + 1
        return dict(sorted(profile.items()))

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #

    def containment_chain(self, u: int, v: int) -> List[Tuple[int, int]]:
        """``(k, community_size)`` for the edge's community at each level
        ``3 <= k <= τ((u, v))`` — communities shrink (weakly) as k rises."""
        tau = self.trussness(u, v)
        chain: List[Tuple[int, int]] = []
        target = (min(u, v), max(u, v))
        for k in range(3, tau + 1):
            for community in self.communities(k):
                if target in community:
                    vertices = {x for edge in community for x in edge}
                    chain.append((k, len(vertices)))
                    break
        return chain

    def max_truss_communities(self) -> List[List[EdgePair]]:
        """The connected `k_max`-trusses (Definition 5 split by Def. 2)."""
        if self.k_max < 2:
            return []
        return self.communities(self.k_max)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrussHierarchy(n={self.graph.n}, m={self.graph.m}, "
            f"k_max={self.k_max}, levels={len(self.level_profile())})"
        )
