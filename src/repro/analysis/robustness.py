"""Truss-core robustness analysis.

How fragile is the ``k_max``-truss under edge failures? Built on the
maintenance engine (paper §IV), these probes measure how many deletions —
random or adversarial — it takes to degrade ``k_max``, and how the class
size decays along the way. Useful both as an application of the dynamic
algorithms and as a stress harness for them (every step is an exact
maintained state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..engine.context import ContextLike
from ..graph.memgraph import Graph
from ..storage import BlockDevice
from ..dynamic.state import DynamicMaxTruss

EdgePair = Tuple[int, int]


@dataclass
class AttackTrace:
    """Record of a degradation run.

    ``k_max_history[i]`` is the value after ``i`` deletions (index 0 is the
    starting value); ``class_sizes`` aligns with it.
    """

    strategy: str
    deleted: List[EdgePair] = field(default_factory=list)
    k_max_history: List[int] = field(default_factory=list)
    class_sizes: List[int] = field(default_factory=list)

    @property
    def deletions_to_first_drop(self) -> Optional[int]:
        """Deletions until ``k_max`` first drops (``None`` if it never did)."""
        start = self.k_max_history[0]
        for index, value in enumerate(self.k_max_history[1:], 1):
            if value < start:
                return index
        return None

    @property
    def final_k_max(self) -> int:
        """``k_max`` at the end of the run."""
        return self.k_max_history[-1]


def _pick_random(state: DynamicMaxTruss, rng) -> Optional[EdgePair]:
    live = state.graph.live_edge_ids()
    if not live:
        return None
    eid = live[int(rng.integers(0, len(live)))]
    return state.graph.endpoints(eid)


def _pick_targeted(state: DynamicMaxTruss, rng) -> Optional[EdgePair]:
    # Adversarial: always hit the current class (the truss's own edges).
    pairs = state.truss_pairs()
    if pairs:
        return pairs[int(rng.integers(0, len(pairs)))]
    return _pick_random(state, rng)


def edge_deletion_attack(
    graph: Graph,
    deletions: int,
    strategy: str = "random",
    seed: Optional[int] = None,
    device: Optional[BlockDevice] = None,
    context: Optional[ContextLike] = None,
) -> AttackTrace:
    """Delete *deletions* edges and trace the ``k_max`` decay.

    Parameters
    ----------
    strategy:
        ``"random"`` — uniform over live edges; ``"targeted"`` — always a
        current class edge (worst case for the truss, and the paper's
        expensive maintenance path).
    """
    if strategy not in ("random", "targeted"):
        raise ValueError(f"unknown attack strategy {strategy!r}")
    if deletions < 0:
        raise ValueError("deletions must be non-negative")
    rng = np.random.default_rng(seed)
    state = DynamicMaxTruss(graph, device=device, context=context)
    trace = AttackTrace(strategy)
    trace.k_max_history.append(state.k_max)
    trace.class_sizes.append(state.truss_edge_count())
    picker = _pick_random if strategy == "random" else _pick_targeted
    for _ in range(deletions):
        pair = picker(state, rng)
        if pair is None:
            break
        state.delete(*pair)
        trace.deleted.append(pair)
        trace.k_max_history.append(state.k_max)
        trace.class_sizes.append(state.truss_edge_count())
    return trace


def resilience_summary(graph: Graph, budget: int = 30, seed: int = 0) -> dict:
    """Compare random vs targeted decay on one graph.

    Returns the two traces' first-drop points and final ``k_max`` values —
    targeted attacks should degrade the truss at least as fast as random
    ones (asserted in tests).
    """
    random_trace = edge_deletion_attack(graph, budget, "random", seed=seed)
    targeted_trace = edge_deletion_attack(graph, budget, "targeted", seed=seed)
    return {
        "random_first_drop": random_trace.deletions_to_first_drop,
        "targeted_first_drop": targeted_trace.deletions_to_first_drop,
        "random_final_kmax": random_trace.final_k_max,
        "targeted_final_kmax": targeted_trace.final_k_max,
    }
