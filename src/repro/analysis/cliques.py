"""Maximum clique and maximum core extraction — the Fig 9 comparators.

The case study contrasts the ``k_max``-truss against the ``(maximum
k)``-clique (too strict: not noise-resistant) and the ``(maximum k)``-core
(too loose: over-expands). Both comparators are implemented here:

* :func:`maximum_clique` — branch-and-bound over the degeneracy ordering
  with greedy-colouring upper bounds; exact on the case-study scale.
* :func:`maximum_core` — vertices of the ``c_max``-core.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from ..graph.memgraph import Graph
from ..semiexternal.core_decomp import core_decomposition_inmemory
from .degeneracy import degeneracy_ordering


def _greedy_colour_order(graph: Graph, candidates: List[int]) -> List[int]:
    """Order candidates by greedy colour class (ascending bound)."""
    colour_classes: List[Set[int]] = []
    coloured: List[tuple] = []
    for v in candidates:
        nbrs = set(int(x) for x in graph.neighbors(v))
        for colour, members in enumerate(colour_classes):
            if not (nbrs & members):
                members.add(v)
                coloured.append((colour + 1, v))
                break
        else:
            colour_classes.append({v})
            coloured.append((len(colour_classes), v))
    coloured.sort()
    return [(bound, v) for bound, v in coloured]


def maximum_clique(graph: Graph) -> List[int]:
    """An exact maximum clique (sorted vertex list).

    Branch-and-bound: vertices are expanded in reverse degeneracy order;
    within a branch, candidates are pruned with greedy-colouring bounds.
    Suitable for the case-study scale (thousands of vertices, modest
    clique numbers).
    """
    if graph.n == 0:
        return []
    if graph.m == 0:
        return [0]
    order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    neighbor_sets = [set(int(x) for x in graph.neighbors(v)) for v in range(graph.n)]
    best: List[int] = []

    def expand(current: List[int], candidates: List[int]) -> None:
        nonlocal best
        if not candidates:
            if len(current) > len(best):
                best = list(current)
            return
        coloured = _greedy_colour_order(graph, candidates)
        for index in range(len(coloured) - 1, -1, -1):
            bound, v = coloured[index]
            if len(current) + bound <= len(best):
                return  # colouring bound prunes the rest
            next_candidates = [
                w for _b, w in coloured[:index] if w in neighbor_sets[v]
            ]
            current.append(v)
            expand(current, next_candidates)
            current.pop()

    for v in reversed(order):
        # Candidates: neighbours later in the degeneracy order.
        candidates = [w for w in neighbor_sets[v] if position[w] > position[v]]
        if 1 + len(candidates) > len(best):
            expand([v], candidates)
    return sorted(best)


def clique_number(graph: Graph) -> int:
    """``ω(G)`` — size of a maximum clique."""
    return len(maximum_clique(graph))


def maximum_core(graph: Graph) -> List[int]:
    """Vertices of the maximum (``c_max``) core — Fig 9's loose comparator."""
    if graph.n == 0 or graph.m == 0:
        return []
    coreness = core_decomposition_inmemory(graph)
    return sorted(int(v) for v in np.nonzero(coreness == coreness.max())[0])
