"""Clique listing — the paper's FPT motivation, made concrete.

The introduction argues that ``k_max`` parameterises fixed-parameter
tractable algorithms: maximum-clique and clique-listing run in time
exponential in a sparsity parameter, and since ``k_max <= c_max + 1`` —
usually far below (Fig 8 b) — bounds stated in ``k_max`` are tighter.
Concretely, every clique is a subgraph of a ``(k)``-truss with ``k`` equal
to the clique size, so ``ω(G) <= k_max`` and every k-clique lives inside
the ``(k)``-truss — the pruning :func:`list_k_cliques` applies.

Implemented here:

* :func:`maximal_cliques` — Bron–Kerbosch with pivoting over the degeneracy
  ordering (the classic ``O(d · n · 3^{d/3})`` scheme);
* :func:`list_k_cliques` / :func:`count_k_cliques` — k-clique listing over
  degeneracy-ordered forward neighbourhoods, optionally pruned to the
  k-truss first (the ``k_max`` parameterisation in action).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

import numpy as np

from ..graph.memgraph import Graph
from .degeneracy import degeneracy_ordering


def maximal_cliques(graph: Graph) -> Iterator[List[int]]:
    """Yield every maximal clique once (each as a sorted vertex list).

    Bron–Kerbosch over the degeneracy order with greedy pivoting: the outer
    loop fixes each vertex ``v`` with candidates restricted to later
    neighbours, which bounds recursion width by the degeneracy.
    """
    if graph.n == 0:
        return
    order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    neighbours: List[Set[int]] = [
        set(int(x) for x in graph.neighbors(v)) for v in range(graph.n)
    ]

    def expand(clique: List[int], candidates: Set[int], excluded: Set[int]):
        if not candidates and not excluded:
            yield sorted(clique)
            return
        pivot_pool = candidates | excluded
        pivot = max(pivot_pool, key=lambda u: len(candidates & neighbours[u]))
        for v in list(candidates - neighbours[pivot]):
            yield from expand(
                clique + [v],
                candidates & neighbours[v],
                excluded & neighbours[v],
            )
            candidates.discard(v)
            excluded.add(v)

    for v in order:
        later = {u for u in neighbours[v] if position[u] > position[v]}
        earlier = {u for u in neighbours[v] if position[u] < position[v]}
        yield from expand([v], later, earlier)


def list_k_cliques(
    graph: Graph, k: int, truss_prune: bool = True
) -> Iterator[Tuple[int, ...]]:
    """Yield every clique of exactly *k* vertices once (sorted tuples).

    With ``truss_prune=True`` (default) the search first restricts to the
    k-truss: a k-clique's edges all have ``>= k − 2`` triangles inside the
    clique, so every k-clique survives the restriction while the candidate
    graph typically shrinks dramatically — the ``k_max`` parameterisation
    the paper motivates. ``k_max < k`` certifies an empty answer upfront.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if k == 1:
        for v in range(graph.n):
            yield (v,)
        return
    work_graph = graph
    relabel: Optional[np.ndarray] = None
    if truss_prune and k >= 3 and graph.m:
        from ..baselines.inmemory import truss_decomposition

        trussness = truss_decomposition(graph)
        keep = np.nonzero(trussness >= k)[0]
        if len(keep) == 0:
            return
        work_graph, node_map, _ = graph.subgraph_by_edges(keep)
        relabel = node_map
    order = degeneracy_ordering(work_graph)
    position = {v: i for i, v in enumerate(order)}
    forward: List[List[int]] = [[] for _ in range(work_graph.n)]
    neighbour_sets: List[Set[int]] = [
        set(int(x) for x in work_graph.neighbors(v)) for v in range(work_graph.n)
    ]
    for v in range(work_graph.n):
        forward[v] = sorted(
            u for u in neighbour_sets[v] if position[u] > position[v]
        )

    def grow(prefix: List[int], candidates: List[int]):
        if len(prefix) == k:
            yield tuple(prefix)
            return
        needed = k - len(prefix)
        for index, v in enumerate(candidates):
            if len(candidates) - index < needed:
                return
            narrowed = [u for u in candidates[index + 1:] if u in neighbour_sets[v]]
            yield from grow(prefix + [v], narrowed)

    for v in order:
        for clique in grow([v], forward[v]):
            if relabel is not None:
                yield tuple(sorted(int(relabel[x]) for x in clique))
            else:
                yield tuple(sorted(clique))


def count_k_cliques(graph: Graph, k: int, truss_prune: bool = True) -> int:
    """Number of k-cliques (see :func:`list_k_cliques`)."""
    return sum(1 for _ in list_k_cliques(graph, k, truss_prune))


def triangle_list(graph: Graph) -> List[Tuple[int, int, int]]:
    """All triangles as sorted 3-tuples (= ``list_k_cliques(graph, 3)``)."""
    return sorted(list_k_cliques(graph, 3, truss_prune=False))
