"""Degeneracy (``c_max``) utilities — paper Exp-6.

The degeneracy of a graph equals its maximum coreness; the paper compares
``k_max`` against it across 168 graphs to argue that ``k_max`` gives tighter
FPT complexity bounds (``k_max <= c_max + 1`` always, and usually far below).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.memgraph import Graph
from ..semiexternal.core_decomp import core_decomposition_inmemory


def degeneracy(graph: Graph) -> int:
    """``c_max`` — the maximum coreness (0 for edgeless graphs)."""
    if graph.n == 0 or graph.m == 0:
        return 0
    return int(core_decomposition_inmemory(graph).max())


def degeneracy_ordering(graph: Graph) -> List[int]:
    """A vertex order repeatedly removing a minimum-degree vertex.

    Every vertex has at most ``c_max`` neighbours later in the order — the
    property the branch-and-bound clique search exploits.
    """
    n = graph.n
    degrees = graph.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    order: List[int] = []
    # Bucket queue over current degree.
    max_degree = int(degrees.max()) if n else 0
    buckets: List[List[int]] = [[] for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degrees[v]].append(v)
    cursor = 0
    for _ in range(n):
        # Buckets hold stale entries (vertices whose degree moved on);
        # drain until a live vertex at the cursor degree appears.
        while True:
            while cursor <= max_degree and not buckets[cursor]:
                cursor += 1
            v = buckets[cursor].pop()
            if not removed[v] and degrees[v] == cursor:
                break
        removed[v] = True
        order.append(v)
        for w in graph.neighbors(v):
            w = int(w)
            if not removed[w]:
                degrees[w] -= 1
                buckets[degrees[w]].append(w)
                if degrees[w] < cursor:
                    cursor = degrees[w]
    return order


def kmax_vs_degeneracy_gap(k_max: int, c_max: int) -> float:
    """The paper's Fig 8 (b) statistic ``(c_max − k_max) / c_max``.

    Returns 0.0 when ``c_max`` is 0.
    """
    if c_max <= 0:
        return 0.0
    return (c_max - k_max) / c_max


def compare(graph: Graph) -> Tuple[int, int, float]:
    """``(k_max, c_max, gap)`` for one graph."""
    from ..baselines.inmemory import max_truss_edges

    k_max, _ = max_truss_edges(graph)
    c_max = degeneracy(graph)
    return k_max, c_max, kmax_vs_degeneracy_gap(k_max, c_max)
