"""Command-line interface: ``repro-truss`` / ``python -m repro``.

Subcommands
-----------
* ``compute`` — run a max-truss algorithm on an edge-list file and print
  ``k_max``, the truss size, and the I/O / memory bill.
* ``stats`` — Table-I style statistics for a file or named dataset.
* ``generate`` — write a stand-in dataset (or generator output) to a file.
* ``convert`` — re-encode a graph between formats (text/metis/compressed/
  the binary ``.rgr`` CSR image — the paper's offline preprocessing step).
* ``maintain`` — apply an update stream (``+u v`` / ``-u v`` lines) to a
  graph, reporting per-op maintenance cost.
* ``ingest`` — pump an edge stream through the pipelined ingestion front
  end (bounded queue, micro-batches, backpressure), optionally durable
  (group-commit WAL) and/or sliding-window.
* ``trace`` — summarize or diff recorded trace files (``compute`` and
  ``maintain`` record one with ``--trace FILE``).
* ``serve`` — answer truss queries over TCP (newline-delimited JSON)
  against a graph, a durable state directory (with background snapshot
  promotion), or a sharded partition directory.
* ``partition`` — cut a graph into vertex-range shards for ``serve``.

Graph operands accept dataset names, edge-list files, and ``.rgr`` images
everywhere; ``--backend file`` runs any engine command against the real
file-backed device (identical charged I/O, plus physical byte counters).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from .analysis.statistics import graph_stats
from .core.api import available_methods, max_truss
from .dynamic import DynamicMaxTruss
from .engine import EngineConfig, ExecutionContext, list_backends
from .errors import GraphFormatError, ReproError
from .graph.datasets import dataset_names, load_dataset
from .graph.edgelist import read_edgelist, write_text_edgelist
from .graph.formats import is_rgr, read_rgr, read_rgr_mapped
from .graph.memgraph import Graph

_CACHE_POLICIES = ("lru", "fifo", "clock")
_FSYNC_POLICIES = ("never", "close", "always")


def _load_graph(source: str, seed: int, backend: str = None) -> Graph:
    """Interpret *source* as a dataset name or a file path.

    Under ``--backend mmap`` an ``.rgr`` source is loaded zero-copy
    (:func:`read_rgr_mapped`): the CSR arrays stay read-only views over
    one shared file mapping, which the mmap device then adopts instead of
    materialising copies.
    """
    if source in dataset_names():
        return load_dataset(source, seed=seed)
    try:
        if is_rgr(source):
            if backend == "mmap":
                return read_rgr_mapped(source)
            return read_rgr(source)
        return read_edgelist(source)
    except (UnicodeDecodeError, ValueError) as exc:
        # Binary garbage fed to the text parser (or vice versa) must be a
        # one-line typed error at the CLI, never a traceback.
        raise GraphFormatError(
            f"{source}: not a recognisable graph file ({exc})"
        ) from exc


@contextlib.contextmanager
def _maybe_trace(context: ExecutionContext, path: Optional[str]):
    """Attach a file-backed tracer to *context* when *path* is given."""
    if not path:
        yield
        return
    from .observability import Tracer, TraceWriter

    with TraceWriter(path) as writer:
        context.attach_tracer(Tracer(writer.write))
        yield
        # The context is closed (finishing the tracer) inside this scope
        # by the caller; the writer then flushes the final records.


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Storage-engine flags shared by compute / compare / maintain."""
    group = parser.add_argument_group("storage engine")
    group.add_argument(
        "--backend", default="simulated", choices=list_backends(),
        help="storage backend charged for edge-file I/O "
             "('file' mirrors every charged block as a real pread/pwrite)",
    )
    group.add_argument(
        "--block-size", type=int, default=EngineConfig().block_size,
        help="block size B in bytes",
    )
    group.add_argument(
        "--cache-blocks", type=int, default=None,
        help="cache pool size in blocks (default: semi-external auto-sizing)",
    )
    group.add_argument(
        "--cache-policy", default="lru", choices=_CACHE_POLICIES,
        help="cache eviction policy",
    )
    group.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="spill-file directory for --backend file "
             "(default: private tmpdir, removed on close)",
    )
    group.add_argument(
        "--fsync", default="close", choices=_FSYNC_POLICIES,
        help="fsync policy for --backend file",
    )
    group.add_argument(
        "--hot-extents", default=None, metavar="PATTERNS",
        help="comma-separated extent-name substrings pinned in the mmap "
             "backend's hot tier (default: truss,tau,heap,offsets)",
    )
    group.add_argument(
        "--cold-cache-mb", type=float, default=EngineConfig().cold_cache_mb,
        metavar="MB",
        help="mmap backend cold-tier (LRU) page-cache budget in MiB",
    )
    group.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for the sharded kernels (0/1: serial; "
             "the charged I/O bill is identical either way)",
    )
    approx = parser.add_argument_group("approximate tier")
    approx.add_argument(
        "--approx-epsilon", type=float,
        default=EngineConfig().approx_epsilon, metavar="EPS",
        help="target CI half-width of the sampling estimators",
    )
    approx.add_argument(
        "--approx-confidence", type=float,
        default=EngineConfig().approx_confidence, metavar="CONF",
        help="nominal CI coverage of approximate answers",
    )
    approx.add_argument(
        "--approx-seed", type=int,
        default=EngineConfig().approx_seed, metavar="SEED",
        help="base seed of every estimator RNG (runs are replayable)",
    )


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    """Build the run's :class:`EngineConfig` from the parsed flags."""
    kwargs = {}
    if getattr(args, "hot_extents", None):
        kwargs["hot_extents"] = tuple(
            pattern.strip() for pattern in args.hot_extents.split(",")
            if pattern.strip()
        )
    if getattr(args, "cold_cache_mb", None) is not None:
        kwargs["cold_cache_mb"] = args.cold_cache_mb
    return EngineConfig(
        backend=args.backend,
        block_size=args.block_size,
        cache_blocks=args.cache_blocks,
        cache_policy=args.cache_policy,
        data_dir=args.data_dir,
        fsync_policy=args.fsync,
        workers=args.workers,
        approx_epsilon=args.approx_epsilon,
        approx_confidence=args.approx_confidence,
        approx_seed=args.approx_seed,
        **kwargs,
    ).validate()


def _cmd_compute(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.seed, backend=args.backend)
    config = _engine_config(args)
    kwargs = {}
    if getattr(args, "estimate_bounds", False):
        if args.method != "semi-binary":
            print("error: --estimate-bounds requires --method semi-binary",
                  file=sys.stderr)
            return 2
        kwargs["estimate_bounds"] = True
    context = ExecutionContext(config)
    with _maybe_trace(context, args.trace):
        with context:
            result = max_truss(
                graph, method=args.method, context=context, **kwargs
            )
    if kwargs.get("estimate_bounds"):
        # Estimator diagnostics go to stderr: stdout stays byte-identical
        # with the default path (the equivalence CI check diffs it).
        interval = result.extras.get("estimate_interval")
        print(
            f"estimator interval: {interval} "
            f"(samples={result.extras.get('estimator_samples')}, "
            f"read I/Os={result.extras.get('estimator_io')}, "
            f"support scans={result.extras.get('support_scans')})",
            file=sys.stderr,
        )
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.format != "plain":
        from .reporting import render_result

        print(render_result(result, args.format))
        print(f"engine: {config.summary()}")
    else:
        print(f"graph: n={graph.n} m={graph.m}")
        print(f"engine: {config.summary()}")
        print(f"algorithm: {result.algorithm}")
        print(f"k_max: {result.k_max}")
        print(f"truss edges: {result.truss_edge_count}")
        print(f"truss vertices: {len(result.truss_vertices())}")
        print(f"read I/Os: {result.io.read_ios}")
        print(f"write I/Os: {result.io.write_ios}")
        print(f"peak model memory: {result.peak_memory_bytes} bytes")
        print(f"elapsed: {result.elapsed_seconds:.3f}s")
    if args.show_edges:
        for u, v in result.truss_edges:
            print(f"{u} {v}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .reporting import render_comparison

    graph = _load_graph(args.graph, args.seed, backend=args.backend)
    config = _engine_config(args)
    # One fresh context per method: same recipe, no warm-cache bleed
    # between competitors.
    results = []
    for method in args.methods:
        with ExecutionContext(config) as context:
            results.append(max_truss(graph, method=method, context=context))
    answers = {result.k_max for result in results}
    print(render_comparison(results, args.format))
    print(f"engine: {config.summary()}")
    if len(answers) != 1:
        print("WARNING: methods disagree on k_max!", file=sys.stderr)
        return 4
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from .approx import build_approx_engine

    graph = _load_graph(args.graph, args.seed, backend=args.backend)
    config = _engine_config(args)
    with ExecutionContext(config) as context:
        engine = build_approx_engine(graph, context=context)
        kmax = engine.kmax()
        triangles = engine.triangles()
        max_support = engine.max_support()
        build_io = engine.build_charged_io

    def describe(name, estimate, digits=1):
        print(
            f"{name}: {estimate.value:.{digits}f} "
            f"(CI [{estimate.ci_low:.{digits}f}, {estimate.ci_high:.{digits}f}] "
            f"@ {estimate.confidence:.0%}, samples={estimate.samples})"
        )

    print(f"graph: n={graph.n} m={graph.m}")
    print(f"engine: {config.summary()}")
    print(f"estimator: epsilon={engine.epsilon} "
          f"confidence={engine.confidence} seed={engine.seed}")
    describe("estimated triangles", triangles)
    describe("estimated max support", max_support)
    describe("estimated k_max", kmax)
    print(f"estimator read I/Os: {build_io}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.seed)
    stats = graph_stats(graph, name=args.graph)
    print(f"{'name':<16} {'n':>8} {'m':>9} {'kmax':>6} {'delta':>6} "
          f"{'tri':>9} {'dmax':>6}")
    print(stats.row())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    write_text_edgelist(graph, args.output)
    print(f"wrote {args.dataset} (n={graph.n}, m={graph.m}) to {args.output}")
    return 0


def _cmd_community(args: argparse.Namespace) -> int:
    from .applications import truss_community

    graph = _load_graph(args.graph, args.seed)
    result = truss_community(
        graph, args.query, connectivity=args.connectivity
    )
    if result is None:
        print("no common community exists for the query vertices")
        return 3
    print(f"community trussness k: {result.k}")
    print(f"community vertices ({result.size}): "
          + " ".join(str(v) for v in result.vertices[:40])
          + (" ..." if result.size > 40 else ""))
    print(f"community edges: {len(result.edges)}")
    if args.show_edges:
        for u, v in result.edges:
            print(f"{u} {v}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from .baselines import truss_decomposition_semi_external

    graph = _load_graph(args.graph, args.seed)
    trussness = truss_decomposition_semi_external(graph)
    print(f"# trussness per edge: u v tau   (n={graph.n} m={graph.m})")
    for eid in range(graph.m):
        u, v = graph.edges[eid]
        print(f"{u} {v} {trussness[eid]}")
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from .analysis.hierarchy import TrussHierarchy
    from .reporting import render_table

    graph = _load_graph(args.graph, args.seed)
    hierarchy = TrussHierarchy(graph)
    print(f"graph: n={graph.n} m={graph.m} k_max={hierarchy.k_max}")
    rows = [
        (k, count, len(hierarchy.communities(k)) if k >= 3 else "-")
        for k, count in hierarchy.level_profile().items()
    ]
    print(render_table(("k", "class_size", "communities"), rows, args.format))
    return 0


def _cmd_maintain(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.seed, backend=args.backend)
    config = _engine_config(args)
    engine_context = ExecutionContext(config)
    with _maybe_trace(engine_context, args.trace):
        try:
            status = _run_maintain(args, config, engine_context, graph)
        finally:
            engine_context.close()
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return status


def _run_maintain(
    args: argparse.Namespace,
    config: EngineConfig,
    engine_context: ExecutionContext,
    graph: Graph,
) -> int:
    state = DynamicMaxTruss(graph, context=engine_context)
    print(f"engine: {config.summary()}")
    print(f"initial k_max: {state.k_max}")
    stream = open(args.updates, "r", encoding="utf-8") if args.updates else sys.stdin
    operations = []
    try:
        for line_number, line in enumerate(stream, 1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            sign = stripped[0]
            try:
                u, v = (int(x) for x in stripped[1:].split())
            except ValueError:
                print(f"line {line_number}: malformed update {stripped!r}",
                      file=sys.stderr)
                return 2
            if args.batch:
                operations.append(
                    ("insert" if sign == "+" else "delete", u, v)
                )
                continue
            result = state.insert(u, v) if sign == "+" else state.delete(u, v)
            print(
                f"{result.operation} ({u},{v}): k_max {result.k_max_before} -> "
                f"{result.k_max_after} [{result.mode}] "
                f"io={result.io.total_ios} {result.elapsed_seconds * 1e3:.2f}ms"
            )
    finally:
        if args.updates:
            stream.close()
    if args.batch and operations:
        batch = state.apply_batch(operations)
        print(
            f"batch of {batch.operations} ops "
            f"({batch.insertions} inserts, {batch.deletions} deletes): "
            f"k_max {batch.k_max_before} -> {batch.k_max_after} "
            f"[{batch.mode}] io={batch.io.total_ios} "
            f"{batch.elapsed_seconds * 1e3:.2f}ms"
        )
    print(f"final k_max: {state.k_max} ({state.truss_edge_count()} class edges)")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from .dynamic.ingest import IngestPipeline
    from .graph.memgraph import Graph as _Graph

    config = _engine_config(args)
    config.ingest_batch_size = args.batch_size
    config.ingest_queue_capacity = args.queue_capacity
    config.ingest_backpressure = args.backpressure
    config.ingest_max_delay = args.max_delay
    config.validate()
    graph = (
        _Graph.empty(0) if args.graph is None
        else _load_graph(args.graph, args.seed, backend=args.backend)
    )
    engine_context = ExecutionContext(config)
    print(f"engine: {config.summary()}")
    print(
        f"ingest: batch_size={config.ingest_batch_size} "
        f"queue={config.ingest_queue_capacity} "
        f"backpressure={config.ingest_backpressure}"
        + (f" max_delay={config.ingest_max_delay}s"
           if config.ingest_max_delay is not None else "")
        + (f" window={args.window}" if args.window is not None else "")
        + (" durable" if args.durable else "")
    )
    state = DynamicMaxTruss(graph, context=engine_context)
    sink = state
    if args.durable:
        from .persistence.recovery import DurableMaintenance

        sink = DurableMaintenance(state, args.durable)
    stream = (
        open(args.updates, "r", encoding="utf-8") if args.updates else sys.stdin
    )
    try:
        pipe = IngestPipeline.from_config(sink, config, window=args.window)
        if args.threaded:
            pipe.start()
        status = _pump_stream(pipe, stream, window=args.window is not None)
        pipe.close()
    finally:
        if args.updates:
            stream.close()
        if args.durable:
            sink.close()
        engine_context.close()
    if status != 0:
        return status
    stats = pipe.stats
    print(
        f"stream: {stats.submitted} submitted, {stats.accepted} accepted, "
        f"{stats.dropped} dropped, {stats.rejected} rejected"
        + (f", {stats.duplicates_skipped} duplicates, "
           f"{stats.expirations} expired" if args.window is not None else "")
    )
    triggers = ", ".join(
        f"{count} by {trigger}"
        for trigger, count in stats.flushes.items() if count
    )
    print(
        f"applied: {stats.applied_ops} ops in {stats.batches} batches"
        + (f" ({triggers})" if triggers else "")
        + f", peak queue depth {stats.max_queue_depth}"
    )
    print(
        f"throughput: {stats.edges_per_sec:.0f} edges/s "
        f"({stats.elapsed_seconds:.3f}s wall, "
        f"{stats.apply_seconds:.3f}s applying)"
    )
    print(f"final k_max: {state.k_max} ({state.truss_edge_count()} class edges)")
    return 0


def _pump_stream(pipe, stream, window: bool) -> int:
    """Feed ``[+|-]u v`` lines into *pipe*; exit status 2 on bad input."""
    for line_number, line in enumerate(stream, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        sign = "+"
        if stripped[0] in "+-":
            sign, stripped = stripped[0], stripped[1:]
        try:
            u, v = (int(x) for x in stripped.split())
        except ValueError:
            print(f"line {line_number}: malformed update {line.strip()!r}",
                  file=sys.stderr)
            return 2
        if window:
            if sign == "-":
                print(
                    f"line {line_number}: explicit deletes are invalid with "
                    "--window (expirations are automatic)", file=sys.stderr,
                )
                return 2
            pipe.submit(u, v)
        elif sign == "+":
            pipe.submit_op("insert", u, v)
        else:
            pipe.submit_op("delete", u, v)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import Promoter, QueryEngine, ShardedRouter
    from .serve.server import run_server
    from .serve.snapshot import SnapshotManager, bootstrap_manager

    sources = [s for s in (args.graph, args.durable, args.partition) if s]
    if len(sources) != 1:
        print("error: give exactly one of GRAPH, --durable DIR, or "
              "--partition DIR", file=sys.stderr)
        return 2
    config = _engine_config(args)
    config.serve_host = args.host
    config.serve_port = args.port
    config.serve_query_timeout = (
        args.query_timeout if args.query_timeout and args.query_timeout > 0
        else None
    )
    config.serve_promote_interval = args.promote_interval
    config.validate()

    promoter = None
    router = None
    if args.partition:
        router = ShardedRouter(args.partition, config)
        executor = router
        described = (
            f"partition {args.partition} ({len(router.engines)} shards, "
            f"n={router.manifest.n}, m={router.manifest.m})"
        )
    elif args.durable:
        manager = bootstrap_manager(args.durable)
        promoter = Promoter(
            manager, args.durable, interval=config.serve_promote_interval
        )
        promoter.start()
        executor = QueryEngine(manager, config)
        snapshot = manager.current()
        described = (
            f"durable state {args.durable} (n={snapshot.graph.n}, "
            f"m={snapshot.graph.m}, wal_seq={snapshot.wal_seq}, "
            f"promoting every {config.serve_promote_interval}s)"
        )
    else:
        graph = _load_graph(args.graph, args.seed, backend=args.backend)
        executor = QueryEngine(SnapshotManager.initial(graph), config)
        described = f"{args.graph} (n={graph.n}, m={graph.m})"

    def announce(address) -> None:
        print(f"serving {described}", flush=True)
        print(f"listening on {address[0]}:{address[1]}", flush=True)

    try:
        server = run_server(
            executor,
            host=config.serve_host,
            port=config.serve_port,
            query_timeout=config.serve_query_timeout,
            on_started=announce,
        )
    finally:
        if promoter is not None:
            promoter.stop()
        if router is not None:
            router.close()
    print(f"drained; served {server.requests_served} requests")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .serve.partition import write_partition

    graph = _load_graph(args.graph, args.seed)
    manifest = write_partition(graph, args.output, shards=args.shards)
    print(f"partitioned {args.graph} (n={graph.n}, m={graph.m}, "
          f"k_max={manifest.k_max}) into {args.shards} shards: {args.output}")
    for shard in manifest.shards:
        print(f"  shard {shard.shard_id}: vertices [{shard.lo}, {shard.hi}) "
              f"edges={shard.edges} cut={shard.cut_edges}")
    share = manifest.cut_edges / manifest.m if manifest.m else 0.0
    print(f"cut edges: {manifest.cut_edges} ({share:.1%} of m)")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    import json

    from .observability import format_summary, read_trace, summarize_trace

    summary = summarize_trace(read_trace(args.trace), top=args.top)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary, args.format))
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    import json

    from .observability import diff_traces, format_diff, read_trace

    diff = diff_traces(read_trace(args.a), read_trace(args.b), top=args.top)
    if args.format == "json":
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(format_diff(diff, args.format))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .graph import formats

    writers = {
        "text": write_text_edgelist,
        "rgr": formats.write_rgr,
        "metis": formats.write_metis,
        "compressed": formats.write_compressed,
    }
    to = args.to
    if to is None:
        # Infer from the output extension; .rgr is the common case (the
        # paper's offline binary-adjacency preprocessing).
        suffix = args.output.rsplit(".", 1)[-1].lower()
        to = {"rgr": "rgr", "metis": "metis", "graph": "metis",
              "cgr": "compressed"}.get(suffix, "text")
    graph = _load_graph(args.input, args.seed)
    writers[to](graph, args.output)
    print(f"converted {args.input} (n={graph.n}, m={graph.m}) "
          f"to {to}: {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-truss",
        description="I/O efficient max-truss computation (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compute = sub.add_parser("compute", help="compute the k_max-truss")
    compute.add_argument("graph", help="edge-list file or dataset name")
    compute.add_argument(
        "--method", default="semi-lazy-update", choices=available_methods()
    )
    compute.add_argument("--seed", type=int, default=0)
    compute.add_argument("--show-edges", action="store_true")
    compute.add_argument("--format", default="plain",
                         choices=["plain", "text", "markdown", "csv"])
    compute.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a structured trace (spans with exact I/O attribution) "
             "to FILE; inspect with 'repro trace summary FILE'",
    )
    compute.add_argument(
        "--estimate-bounds", action="store_true",
        help="seed the semi-binary search interval from the sampling "
             "estimators (fewer full support scans, bit-identical result; "
             "semi-binary only)",
    )
    _add_engine_flags(compute)
    compute.set_defaults(func=_cmd_compute)

    compare = sub.add_parser("compare", help="run several methods side by side")
    compare.add_argument("graph", help="edge-list file or dataset name")
    compare.add_argument(
        "--methods", nargs="+",
        default=["semi-binary", "semi-greedy-core", "semi-lazy-update"],
        choices=available_methods(),
    )
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--format", default="text",
                         choices=["text", "markdown", "csv"])
    _add_engine_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    estimate = sub.add_parser(
        "estimate",
        help="sampling estimates with confidence bounds "
             "(triangles, max support, k_max)",
    )
    estimate.add_argument("graph", help="edge-list file or dataset name")
    estimate.add_argument("--seed", type=int, default=0,
                          help="seed for generated datasets")
    _add_engine_flags(estimate)
    estimate.set_defaults(func=_cmd_estimate)

    stats = sub.add_parser("stats", help="Table-I style statistics")
    stats.add_argument("graph", help="edge-list file or dataset name")
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)

    generate = sub.add_parser("generate", help="write a stand-in dataset")
    generate.add_argument("dataset", choices=dataset_names())
    generate.add_argument("output")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    convert = sub.add_parser(
        "convert",
        help="re-encode a graph (text/metis/compressed/.rgr binary CSR)",
    )
    convert.add_argument("input", help="edge-list/.rgr file or dataset name")
    convert.add_argument("output", help="output path")
    convert.add_argument(
        "--to", default=None, choices=["text", "metis", "compressed", "rgr"],
        help="output format (default: inferred from the output extension)",
    )
    convert.add_argument("--seed", type=int, default=0)
    convert.set_defaults(func=_cmd_convert)

    maintain = sub.add_parser("maintain", help="apply an update stream")
    maintain.add_argument("graph", help="edge-list file or dataset name")
    maintain.add_argument(
        "--updates", help="file of '+u v' / '-u v' lines (default: stdin)"
    )
    maintain.add_argument(
        "--batch", action="store_true",
        help="apply the whole stream as one batch (single global recompute)",
    )
    maintain.add_argument("--seed", type=int, default=0)
    maintain.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a structured trace of the whole update stream to FILE",
    )
    _add_engine_flags(maintain)
    maintain.set_defaults(func=_cmd_maintain)

    ingest = sub.add_parser(
        "ingest",
        help="stream edges through the pipelined ingestion front end",
    )
    ingest.add_argument(
        "graph", nargs="?", default=None,
        help="starting graph (edge-list file or dataset name; "
             "default: empty graph)",
    )
    ingest.add_argument(
        "--updates", help="edge stream file of 'u v' (insert/arrival) and "
                          "'-u v' (delete) lines (default: stdin)",
    )
    ingest.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="sliding-window mode: keep the last N streamed edges alive "
             "(lines are arrivals; expirations are automatic)",
    )
    ingest.add_argument(
        "--batch-size", type=int, default=EngineConfig().ingest_batch_size,
        help="micro-batch flush threshold (and WAL group-commit size)",
    )
    ingest.add_argument(
        "--queue-capacity", type=int,
        default=EngineConfig().ingest_queue_capacity,
        help="bounded-queue capacity before backpressure engages",
    )
    ingest.add_argument(
        "--backpressure", default="block",
        choices=["block", "drop-oldest", "reject"],
        help="full-queue policy",
    )
    ingest.add_argument(
        "--max-delay", type=float, default=None, metavar="SECONDS",
        help="flush when the oldest queued event is this old",
    )
    ingest.add_argument(
        "--durable", default=None, metavar="DIR",
        help="run over a write-ahead log in DIR (one group-commit fsync "
             "per micro-batch)",
    )
    ingest.add_argument(
        "--threaded", action="store_true",
        help="drain on a background consumer thread (overlap producer "
             "parsing with the apply path)",
    )
    ingest.add_argument("--seed", type=int, default=0)
    _add_engine_flags(ingest)
    ingest.set_defaults(func=_cmd_ingest)

    trace = sub.add_parser(
        "trace", help="summarize or diff recorded trace files"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="top spans by I/O and wall-clock + extent attribution"
    )
    trace_summary.add_argument("trace", help="trace file to summarize")
    trace_summary.add_argument("--top", type=int, default=10)
    trace_summary.add_argument(
        "--format", default="text",
        choices=["text", "markdown", "csv", "json"],
    )
    trace_summary.set_defaults(func=_cmd_trace_summary)
    trace_diff = trace_sub.add_parser(
        "diff", help="A/B regression hunt between two traces"
    )
    trace_diff.add_argument("a", help="baseline trace file")
    trace_diff.add_argument("b", help="candidate trace file")
    trace_diff.add_argument("--top", type=int, default=10)
    trace_diff.add_argument(
        "--format", default="text",
        choices=["text", "markdown", "csv", "json"],
    )
    trace_diff.set_defaults(func=_cmd_trace_diff)

    community = sub.add_parser(
        "community", help="truss community search for query vertices"
    )
    community.add_argument("graph", help="edge-list file or dataset name")
    community.add_argument("query", type=int, nargs="+",
                           help="query vertex ids")
    community.add_argument("--connectivity", default="vertex",
                           choices=["vertex", "triangle"])
    community.add_argument("--seed", type=int, default=0)
    community.add_argument("--show-edges", action="store_true")
    community.set_defaults(func=_cmd_community)

    decompose = sub.add_parser(
        "decompose", help="full semi-external truss decomposition"
    )
    decompose.add_argument("graph", help="edge-list file or dataset name")
    decompose.add_argument("--seed", type=int, default=0)
    decompose.set_defaults(func=_cmd_decompose)

    hierarchy = sub.add_parser(
        "hierarchy", help="k-class level profile and community counts"
    )
    hierarchy.add_argument("graph", help="edge-list file or dataset name")
    hierarchy.add_argument("--seed", type=int, default=0)
    hierarchy.add_argument("--format", default="text",
                           choices=["text", "markdown", "csv"])
    hierarchy.set_defaults(func=_cmd_hierarchy)

    serve = sub.add_parser(
        "serve",
        help="answer truss queries over TCP (newline-delimited JSON)",
    )
    serve.add_argument(
        "graph", nargs="?", default=None,
        help="graph to serve (edge-list/.rgr file or dataset name); "
             "or use --durable / --partition",
    )
    serve.add_argument(
        "--durable", default=None, metavar="DIR",
        help="serve a durable maintenance directory (checkpoint + WAL); "
             "a background promoter publishes fresh snapshots as the WAL "
             "grows",
    )
    serve.add_argument(
        "--partition", default=None, metavar="DIR",
        help="serve a sharded partition directory (see 'repro partition') "
             "through the scatter/gather router",
    )
    serve.add_argument(
        "--host", default=EngineConfig().serve_host,
        help="bind address",
    )
    serve.add_argument(
        "--port", type=int, default=EngineConfig().serve_port,
        help="bind port (0: ephemeral, announced on stdout)",
    )
    serve.add_argument(
        "--query-timeout", type=float,
        default=EngineConfig().serve_query_timeout, metavar="SECONDS",
        help="per-query budget; past it the query answers a timeout "
             "error envelope (0 or negative: no limit)",
    )
    serve.add_argument(
        "--promote-interval", type=float,
        default=EngineConfig().serve_promote_interval, metavar="SECONDS",
        help="promoter poll interval for --durable",
    )
    serve.add_argument("--seed", type=int, default=0)
    _add_engine_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    partition = sub.add_parser(
        "partition",
        help="cut a graph into vertex-range shards for sharded serving",
    )
    partition.add_argument("graph", help="edge-list/.rgr file or dataset name")
    partition.add_argument("output", help="partition directory to write")
    partition.add_argument(
        "--shards", type=int, default=4,
        help="number of degree-balanced vertex-range shards",
    )
    partition.add_argument("--seed", type=int, default=0)
    partition.set_defaults(func=_cmd_partition)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout piped into a pager/head that exited; not an error of ours.
        # Point stdout's fd at devnull so the interpreter's shutdown flush
        # does not raise again, and exit with the conventional 128+SIGPIPE.
        devnull = os.open(os.devnull, os.O_WRONLY)
        with contextlib.suppress(OSError, ValueError):
            os.dup2(devnull, sys.stdout.fileno())
        os.close(devnull)
        return 141
    except OSError as error:
        # Missing files, permission problems, full disks: one line, no
        # traceback (FileNotFoundError is the common case).
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
