"""Top-Down — the state-of-the-art comparison target (Wang & Cheng).

The algorithm the paper sets out to beat, with the three weaknesses the
paper's introduction documents deliberately reproduced:

1. **expensive edge upper bounds** — per-edge trussness upper bounds are
   refined by h-index iterations, each a full triangle enumeration over the
   disk-resident graph (heavy read I/O, the "highly time-consuming"
   technique);
2. **loose bounds → many partitions** — the descending-threshold loop
   re-scans the whole edge file and re-materialises a candidate subgraph
   every round until the candidate's internal ``k_max`` certifies the
   answer;
3. **in-memory partitions** — each candidate subgraph is decomposed *in
   memory* (charged to the memory meter edge-indexed), which is why
   Top-Down's memory footprint dwarfs the semi-external algorithms' in
   Fig 5 (e-f).

A :class:`~repro._util.WorkBudget` caps the total peel work so benchmarks
can report "INF" like the paper's 48-hour timeout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import Stopwatch, WorkBudget
from ..core.result import MaxTrussResult
from ..engine.context import ContextLike, resolve_context
from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph
from ..semiexternal.core_decomp import h_index
from ..semiexternal.support import compute_supports
from ..storage import BlockDevice, DiskArray
from .inmemory import truss_decomposition


def _refine_upper_bounds(
    disk_graph: DiskGraph,
    supports: DiskArray,
    rounds: int,
    budget: Optional[WorkBudget],
) -> DiskArray:
    """H-index refinement of per-edge trussness upper bounds.

    ``ub(e) − 2`` starts at ``sup(e)`` and is repeatedly lowered to the
    h-index of ``min(ub(f), ub(g)) − 2`` over the triangles ``(e, f, g)``.
    Every round enumerates all triangles from disk — the costly step the
    paper criticises. The result stays a sound upper bound on ``τ(e) − 2``.
    """
    n = disk_graph.n
    upper = DiskArray(
        disk_graph.device, disk_graph.m, np.int64, name="td.ub", fill=0
    )
    # Initialise from supports (sequential copy through memory blocks).
    block = 8192
    for start in range(0, disk_graph.m, block):
        stop = min(start + block, disk_graph.m)
        upper.write_slice(start, supports.read_slice(start, stop))
    marker = np.full(n, -1, dtype=np.int64)
    marker_eid = np.zeros(n, dtype=np.int64)
    for _round in range(rounds):
        changed = False
        for u in range(n):
            if disk_graph.degree(u) == 0:
                continue
            nbrs, eids = disk_graph.load_neighbors_with_eids(u)
            marker[nbrs] = u
            marker_eid[nbrs] = eids
            for position in range(len(nbrs)):
                v = int(nbrs[position])
                if v <= u:
                    continue
                if budget is not None:
                    budget.spend()
                uv_eid = int(eids[position])
                v_nbrs, v_eids = disk_graph.load_neighbors_with_eids(v)
                hits = marker[v_nbrs] == u
                if not hits.any():
                    continue
                partner_values = []
                for w_eid_v, w in zip(v_eids[hits], v_nbrs[hits]):
                    uw = upper.get(int(marker_eid[w]))
                    vw = upper.get(int(w_eid_v))
                    partner_values.append(min(uw, vw))
                candidate = h_index(np.asarray(partner_values, dtype=np.int64))
                if candidate < upper.get(uv_eid):
                    upper.set(uv_eid, candidate)
                    changed = True
        if not changed:
            break
    return upper


def top_down(
    graph: Graph,
    device: Optional[BlockDevice] = None,
    budget: Optional[WorkBudget] = None,
    refine_rounds: int = 2,
    context: Optional[ContextLike] = None,
) -> MaxTrussResult:
    """Compute the ``k_max``-truss with the Top-Down baseline."""
    watch = Stopwatch()
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    memory = ctx.memory
    budget = ctx.new_budget(budget)
    disk_graph = DiskGraph(graph, device, memory, name="G")
    io_start = device.stats.snapshot()

    if graph.m == 0:
        return MaxTrussResult(
            "TopDown", 0, [], device.stats.since(io_start),
            memory.peak_bytes, watch.elapsed(),
        )

    scan = compute_supports(disk_graph)
    if scan.triangle_count == 0:
        return MaxTrussResult(
            "TopDown", 2, graph.edge_pairs(), device.stats.since(io_start),
            memory.peak_bytes, watch.elapsed(),
        )

    upper = _refine_upper_bounds(disk_graph, scan.supports, refine_rounds, budget)

    # Descending-threshold partitions.
    all_upper = upper.to_numpy()  # full scan to find the level frontier
    theta = int(all_upper.max()) + 2
    partitions = 0
    k_max = 2
    truss_pairs = graph.edge_pairs()
    while theta >= 3:
        partitions += 1
        # Full edge-file scan to select the candidate partition.
        candidate_ids = []
        block = 8192
        for start in range(0, disk_graph.m, block):
            stop = min(start + block, disk_graph.m)
            chunk = upper.read_slice(start, stop)
            hits = np.nonzero(chunk + 2 >= theta)[0] + start
            candidate_ids.extend(int(x) for x in hits)
        if not candidate_ids:
            theta -= 1
            continue
        if budget is not None:
            budget.spend(len(candidate_ids))
        endpoints = disk_graph.load_endpoints_many(np.asarray(candidate_ids))
        # The partition is decomposed *in memory* (Top-Down's footprint).
        partition = Graph.from_edges(endpoints, n=graph.n)
        memory.charge("td.partition", 8 * (3 * partition.m + 2 * partition.n))
        trussness = truss_decomposition(partition)
        memory.release("td.partition")
        internal_kmax = int(trussness.max()) if partition.m else 2
        if internal_kmax >= theta:
            # Certified: all edges that could reach theta were included.
            k_max = internal_kmax
            top_ids = np.nonzero(trussness == internal_kmax)[0]
            truss_pairs = sorted(
                (int(partition.edges[eid, 0]), int(partition.edges[eid, 1]))
                for eid in top_ids
            )
            break
        # Lower the threshold (the candidate certifies k_max < theta) and
        # re-partition from scratch next round — Top-Down's re-scan cost.
        theta -= 1
    upper.free()
    scan.supports.free()
    device.flush()
    return MaxTrussResult(
        "TopDown",
        k_max,
        truss_pairs,
        device.stats.since(io_start),
        memory.peak_bytes,
        watch.elapsed(),
        extras={"partitions": partitions, "refine_rounds": refine_rounds},
    )
