"""In-memory truss decomposition — the ground-truth reference.

Classic Wang–Cheng peeling: repeatedly remove the minimum-support edge,
assigning it trussness ``support + 2``; when a triangle is destroyed, the
two remaining edges lose one support, clamped at the current level so
trussness never regresses. Exact and ``O(m^1.5)``-ish; every other
algorithm in the library is validated against it (and it against
``networkx.k_truss`` in the tests).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from .._util import Stopwatch
from ..graph.memgraph import Graph
from ..core.result import MaxTrussResult
from ..storage import IOStats


def truss_decomposition(graph: Graph) -> np.ndarray:
    """Exact trussness ``τ(e)`` for every edge, indexed by edge id.

    Edges in no triangle get trussness 2 (they belong to the trivial
    2-truss only).
    """
    m = graph.m
    trussness = np.zeros(m, dtype=np.int64)
    if m == 0:
        return trussness
    support = graph.edge_supports().astype(np.int64)
    alive = np.ones(m, dtype=bool)
    # Mutable adjacency: vertex -> {neighbor: eid}.
    adjacency: List[Dict[int, int]] = [dict() for _ in range(graph.n)]
    for eid in range(m):
        u, v = graph.edges[eid]
        adjacency[u][int(v)] = eid
        adjacency[v][int(u)] = eid

    heap: List[Tuple[int, int]] = [(int(support[eid]), eid) for eid in range(m)]
    heapq.heapify(heap)
    level = 0
    removed = 0
    while removed < m:
        key, eid = heapq.heappop(heap)
        if not alive[eid] or key != support[eid]:
            continue  # stale entry
        level = max(level, key)
        trussness[eid] = level + 2
        alive[eid] = False
        removed += 1
        u, v = graph.edges[eid]
        u, v = int(u), int(v)
        first, second = adjacency[u], adjacency[v]
        if len(first) > len(second):
            first, second = second, first
        common = [w for w in first if w in second]
        for w in common:
            f = adjacency[u][w]
            g = adjacency[v][w]
            for other in (f, g):
                if support[other] > level:
                    support[other] -= 1
                    heapq.heappush(heap, (int(support[other]), other))
        del adjacency[u][v]
        del adjacency[v][u]
    return trussness


def max_truss_edges(graph: Graph) -> Tuple[int, List[Tuple[int, int]]]:
    """``(k_max, edges of the k_max-truss)`` from exact trussness."""
    if graph.m == 0:
        return 0, []
    trussness = truss_decomposition(graph)
    k_max = int(trussness.max())
    edge_ids = np.nonzero(trussness == k_max)[0]
    pairs = [(int(graph.edges[eid, 0]), int(graph.edges[eid, 1])) for eid in edge_ids]
    return k_max, sorted(pairs)


def k_truss_edges(graph: Graph, k: int) -> List[Tuple[int, int]]:
    """Edges of the (maximal) *k*-truss: all edges with trussness ``>= k``."""
    if graph.m == 0:
        return []
    trussness = truss_decomposition(graph)
    edge_ids = np.nonzero(trussness >= k)[0]
    return sorted(
        (int(graph.edges[eid, 0]), int(graph.edges[eid, 1])) for eid in edge_ids
    )


def k_classes(graph: Graph) -> Dict[int, List[Tuple[int, int]]]:
    """The k-class partition (Definition 4): trussness value -> edges."""
    classes: Dict[int, List[Tuple[int, int]]] = {}
    if graph.m == 0:
        return classes
    trussness = truss_decomposition(graph)
    for eid in range(graph.m):
        pair = (int(graph.edges[eid, 0]), int(graph.edges[eid, 1]))
        classes.setdefault(int(trussness[eid]), []).append(pair)
    for edges in classes.values():
        edges.sort()
    return classes


def in_memory_max_truss(graph: Graph, **_kwargs) -> MaxTrussResult:
    """:class:`MaxTrussResult`-shaped wrapper over the exact decomposition.

    Reported I/O is zero (the point of comparison: this algorithm needs the
    whole graph in RAM) and memory is the resident edge state.
    """
    watch = Stopwatch()
    k_max, pairs = max_truss_edges(graph)
    # Supports + trussness + adjacency dicts, all edge-indexed in RAM.
    model_memory = 8 * (3 * graph.m + 2 * graph.n)
    return MaxTrussResult(
        "InMemory",
        k_max,
        pairs,
        IOStats(),
        model_memory,
        watch.elapsed(),
        extras={"note": "reference algorithm; requires O(m) memory"},
    )
