"""Comparison algorithms: in-memory ground truth, Bottom-Up, Top-Down."""

from .inmemory import (
    truss_decomposition,
    max_truss_edges,
    k_truss_edges,
    k_classes,
    in_memory_max_truss,
)
from .bottom_up import bottom_up, truss_decomposition_semi_external
from .top_down import top_down
from .partitioned import partitioned_truss_decomposition

__all__ = [
    "truss_decomposition",
    "max_truss_edges",
    "k_truss_edges",
    "k_classes",
    "in_memory_max_truss",
    "bottom_up",
    "truss_decomposition_semi_external",
    "top_down",
    "partitioned_truss_decomposition",
]
