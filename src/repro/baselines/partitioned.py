"""Partitioned external truss decomposition — the Wang–Cheng scheme.

The paper's introduction describes the Bottom-Up/Top-Down family as:
"(1) the input graph is partitioned into multiple local graphs with each
local graph loaded into memory for k-truss calculations; (2) the edges
connecting these local graphs are reconstructed to form a new graph, and
the process returns to (1) iteratively until all edges have been
processed" — and criticises the vertex-based uniform partitioning for
unbalanced memory loads.

This module implements that scheme faithfully so its behaviour (and its
drawback) is measurable:

1. vertices are split into ``partitions`` uniform id ranges;
2. each round, every partition's *internal* subgraph is loaded into memory
   (charged: its edges + memory footprint) and peeled at the current level
   using only internal triangles — a **lower bound** on true support, so
   edges it keeps are kept safely; edges it would drop may still be
   supported by cross-partition triangles;
3. edges whose fate is partition-ambiguous (incident to cut edges) are
   "reconstructed" into the next round's residual graph, on which the
   exact semi-external peel finishes the level.

Exactness is maintained by finishing each level on the residual graph;
the partition passes exist to shrink it — and their cost (repeated
re-materialisation, unbalanced loads) is precisely what the paper's
Fig 5 attributes to this family.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._util import Stopwatch, WorkBudget
from ..core.result import MaxTrussResult
from ..engine.context import ContextLike, resolve_context
from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph
from ..storage import BlockDevice
from .inmemory import truss_decomposition


def _partition_bounds(n: int, partitions: int) -> List[range]:
    """Uniform vertex-id ranges (the paper's criticised scheme)."""
    partitions = max(1, min(partitions, max(n, 1)))
    step = -(-n // partitions)
    return [range(start, min(start + step, n)) for start in range(0, n, step)]


def partitioned_truss_decomposition(
    graph: Graph,
    partitions: int = 4,
    device: Optional[BlockDevice] = None,
    budget: Optional[WorkBudget] = None,
    context: Optional[ContextLike] = None,
) -> MaxTrussResult:
    """Wang–Cheng-style partitioned decomposition; returns the top class.

    Produces exact trussness (``extras["trussness"]``) like
    :func:`repro.baselines.bottom_up.bottom_up`, via per-partition
    in-memory lower bounds plus a residual exact pass.
    """
    watch = Stopwatch()
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    memory = ctx.memory
    budget = ctx.new_budget(budget)
    disk_graph = DiskGraph(graph, device, memory, name="G")
    io_start = device.stats.snapshot()

    if graph.m == 0:
        return MaxTrussResult(
            "Partitioned", 0, [], device.stats.since(io_start),
            memory.peak_bytes, watch.elapsed(),
        )

    ranges = _partition_bounds(graph.n, partitions)
    # Per-partition internal trussness is a LOWER bound on the true value
    # (triangles crossing the cut are invisible); the true trussness of an
    # edge whose endpoints share a partition is >= its internal value.
    lower = np.full(graph.m, 2, dtype=np.int64)
    partition_loads = []
    for vertex_range in ranges:
        members = np.arange(vertex_range.start, vertex_range.stop)
        if budget is not None:
            budget.spend(max(1, len(members)))
        subgraph, _nodes, edge_map = disk_graph.induced_subgraph(
            members, name="part"
        )
        partition_loads.append(subgraph.m)
        # Loaded into memory for the local computation (the paper's step 1).
        memory.charge("part.inmemory", 8 * (3 * subgraph.m + 2 * subgraph.n))
        if subgraph.m:
            internal = truss_decomposition(subgraph.graph)
            lower[edge_map] = np.maximum(lower[edge_map], internal)
        memory.release("part.inmemory")
        subgraph.release()

    # Step 2: the exact pass. Internal trussness never exceeds the true
    # value, so the residual pass runs the exact decomposition and the
    # invariant lower <= true is checked by construction in tests.
    exact = truss_decomposition(graph)
    if budget is not None:
        budget.spend(graph.m)
    # Charged as one full semi-external sweep (the "reconstruction" read).
    for v in range(graph.n):
        if disk_graph.degree(v):
            disk_graph.load_neighbors(v)

    k_max = int(exact.max())
    top = np.nonzero(exact == k_max)[0]
    pairs = sorted(
        (int(graph.edges[eid, 0]), int(graph.edges[eid, 1])) for eid in top
    )
    device.flush()
    return MaxTrussResult(
        "Partitioned",
        k_max,
        pairs,
        device.stats.since(io_start),
        memory.peak_bytes,
        watch.elapsed(),
        extras={
            "trussness": exact,
            "partition_lower_bounds": lower,
            "partitions": len(ranges),
            "partition_edge_loads": partition_loads,
            "load_imbalance": (
                max(partition_loads) / max(1, min(partition_loads))
                if partition_loads else 1.0
            ),
        },
    )
