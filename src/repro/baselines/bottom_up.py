"""Bottom-Up — Wang & Cheng's external truss decomposition baseline.

Peels the *entire* graph level by level on disk: every edge's trussness is
computed even though only the top class is wanted. The peel heap is the
eager ``A_disk`` (:class:`~repro.core.peeling.PlainDiskHeap`), so every
support decrement is a charged disk reorder, and the per-edge trussness
values are streamed to a disk array as edges die. This is the
"complete truss decomposition to obtain the k_max-truss" approach the paper
improves upon.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import Stopwatch, WorkBudget
from ..core.peeling import delete_edge_kernel, make_plain_heap
from ..engine.context import ContextLike, resolve_context
from ..core.result import MaxTrussResult
from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph
from ..semiexternal.support import compute_supports
from ..storage import BlockDevice, DiskArray


def truss_decomposition_semi_external(
    graph: Graph,
    device: Optional[BlockDevice] = None,
    budget: Optional[WorkBudget] = None,
    context: Optional[ContextLike] = None,
) -> np.ndarray:
    """Full per-edge trussness computed under the semi-external model.

    Thin public wrapper over :func:`bottom_up`: the peel streams every
    edge's trussness to a disk array; this returns it as a numpy array
    indexed by the graph's edge ids.
    """
    return bottom_up(graph, device=device, budget=budget, context=context).extras.get(
        "trussness", np.zeros(graph.m, dtype=np.int64)
    )


def bottom_up(
    graph: Graph,
    device: Optional[BlockDevice] = None,
    budget: Optional[WorkBudget] = None,
    context: Optional[ContextLike] = None,
) -> MaxTrussResult:
    """Full external truss decomposition; returns the top class.

    The complete trussness array is produced on disk as a by-product
    (``extras["trussness"]`` exposes it for tests).
    """
    watch = Stopwatch()
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    memory = ctx.memory
    budget = ctx.new_budget(budget)
    disk_graph = DiskGraph(graph, device, memory, name="G")
    io_start = device.stats.snapshot()

    if graph.m == 0:
        return MaxTrussResult(
            "BottomUp", 0, [], device.stats.since(io_start),
            memory.peak_bytes, watch.elapsed(),
        )

    scan = compute_supports(disk_graph)
    keys = scan.supports.to_numpy()
    heap = make_plain_heap(
        device, range(graph.m), keys, memory=memory, name="bu.adisk"
    )
    trussness_file = DiskArray(device, graph.m, np.int64, name="bu.truss", fill=0)

    level = 0
    while len(heap):
        if budget is not None:
            budget.spend()
        eid, key = heap.pop_min()
        level = max(level, key)
        trussness_file.set(eid, level + 2)
        delete_edge_kernel(heap, disk_graph, eid, level)

    trussness = trussness_file.to_numpy()
    k_max = int(trussness.max())
    edge_ids = np.nonzero(trussness == k_max)[0]
    pairs = sorted(
        (int(graph.edges[eid, 0]), int(graph.edges[eid, 1])) for eid in edge_ids
    )
    heap.release()
    scan.supports.free()
    device.flush()
    return MaxTrussResult(
        "BottomUp",
        k_max,
        pairs,
        device.stats.since(io_start),
        memory.peak_bytes,
        watch.elapsed(),
        extras={"trussness": trussness, "triangles": scan.triangle_count},
    )
