"""Truss query service: snapshot-isolated concurrent serving.

The batch side of the repo builds and maintains a decomposition
(:mod:`repro.persistence`, :mod:`repro.dynamic`); this package answers
queries against it while ingestion keeps writing:

* :mod:`~repro.serve.snapshot` — immutable :class:`Snapshot` bundles
  (graph + trussness + ``wal_seq``), refcount-pinned by readers, published
  atomically by the background :class:`Promoter` replaying the WAL (MVCC:
  pin → promote → retire, readers never block on writers);
* :mod:`~repro.serve.engine` — the per-request :class:`QueryEngine`
  (membership / trussness / community / hierarchy / stats), every answer
  carrying its snapshot id and charged-I/O bill from a read-only
  :class:`~repro.engine.context.ExecutionContext`;
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — the asyncio
  TCP server behind ``repro serve`` (newline-delimited JSON) and the
  blocking client used by tests and CI;
* :mod:`~repro.serve.partition` / :mod:`~repro.serve.router` — the
  vertex-range shard manifest behind ``repro partition`` and the
  scatter/gather router that fans queries over shards (tolerating
  partial shard failure on scatter/gather ops);
* :mod:`~repro.serve.cache` — the per-snapshot :class:`ResultCache`
  (answers are immutable per snapshot, so memoisation is exact; evicted
  on snapshot retire).

``membership`` / ``trussness`` / ``stats`` accept ``precision="approx"``
(single-image engines only): answers come from per-snapshot
:class:`~repro.approx.ApproxEngine` state and carry
``{estimate, ci, confidence, samples}`` with a sublinear I/O bill.
"""

from .cache import ResultCache
from .engine import QueryAnswer, QueryEngine
from .partition import (
    PartitionManifest,
    ShardInfo,
    load_manifest,
    write_partition,
)
from .protocol import decode_line, encode_envelope, error_envelope
from .router import ShardedRouter
from .server import TrussServer
from .client import TrussClient
from .snapshot import Promoter, Snapshot, SnapshotManager

__all__ = [
    "Promoter",
    "PartitionManifest",
    "QueryAnswer",
    "QueryEngine",
    "ResultCache",
    "ShardInfo",
    "ShardedRouter",
    "Snapshot",
    "SnapshotManager",
    "TrussClient",
    "TrussServer",
    "decode_line",
    "encode_envelope",
    "error_envelope",
    "load_manifest",
    "write_partition",
]
