"""Vertex-range graph partitioning for sharded serving.

``repro partition`` splits one ``.rgr`` image into per-shard images plus
a manifest, so the scatter/gather router (and later, shard processes) can
serve the graph piecewise:

* **ranges**: shard *i* owns the contiguous vertex range
  ``[boundaries[i], boundaries[i+1])``. Boundaries are degree-balanced —
  chosen so owned-edge counts split as evenly as contiguity allows — not
  naive ``n / shards`` cuts.
* **edge ownership**: edge ``(u, v)`` (stored with ``u < v``) belongs to
  the shard owning ``u``, its minimum endpoint. Ownership is a partition:
  every edge lives in exactly one shard image, so gathered unions need no
  dedup and sharded aggregates sum exactly.
* **shard images** keep **global** vertex ids (``.rgr`` supports isolated
  vertices), so routing needs no id translation — the manifest's ranges
  are the whole routing table.
* each shard gets a ``.tau`` trussness sidecar aligned with its image's
  edge ids, and the manifest records the **cut-edge table** — edges whose
  endpoints live in different shards — the structure a future
  multi-process deployment needs for neighbourhood expansion.

Layout of a partition directory::

    manifest.json          ranges, file names, counts, k_max
    shard-0000.rgr ...     per-shard CSR images (global ids)
    shard-0000.tau ...     per-shard trussness sidecars
    cuts.bin               (u, v, owner, peer) rows, CRC-framed
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..baselines.inmemory import truss_decomposition
from ..errors import PartitionError
from ..graph.memgraph import Graph
from ..persistence.graph_file import read_rgr, write_rgr

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
CUT_TABLE_NAME = "cuts.bin"
_MANIFEST_VERSION = 1

_TAU_MAGIC = b"RTAU"
_CUT_MAGIC = b"RCUT"
_SIDE_HEADER = struct.Struct("<4sIQ")  # magic, version, row count
_CRC = struct.Struct("<I")


def write_tau_sidecar(path: PathLike, values: np.ndarray) -> int:
    """Write a trussness sidecar; returns bytes written."""
    values = np.asarray(values, dtype="<i8")
    body = _SIDE_HEADER.pack(_TAU_MAGIC, 1, len(values)) + values.tobytes()
    payload = body + _CRC.pack(zlib.crc32(body))
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def read_tau_sidecar(path: PathLike) -> np.ndarray:
    """Read (and CRC-check) a trussness sidecar."""
    rows = _read_sidecar(path, _TAU_MAGIC, row_ints=1)
    return rows.reshape(-1)


def write_cut_table(path: PathLike, rows: np.ndarray) -> int:
    """Write the cut-edge table: ``(u, v, owner, peer)`` int64 rows."""
    rows = np.asarray(rows, dtype="<i8").reshape(-1, 4)
    body = _SIDE_HEADER.pack(_CUT_MAGIC, 1, len(rows)) + rows.tobytes()
    payload = body + _CRC.pack(zlib.crc32(body))
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def read_cut_table(path: PathLike) -> np.ndarray:
    """Read (and CRC-check) the cut-edge table as an ``(c, 4)`` array."""
    return _read_sidecar(path, _CUT_MAGIC, row_ints=4)


def _read_sidecar(path: PathLike, magic: bytes, row_ints: int) -> np.ndarray:
    with open(path, "rb") as handle:
        payload = handle.read()
    if len(payload) < _SIDE_HEADER.size + _CRC.size:
        raise PartitionError(f"{path}: truncated sidecar")
    body, (crc,) = payload[: -_CRC.size], _CRC.unpack(payload[-_CRC.size:])
    if zlib.crc32(body) != crc:
        raise PartitionError(f"{path}: sidecar checksum mismatch")
    found, version, count = _SIDE_HEADER.unpack_from(body)
    if found != magic:
        raise PartitionError(f"{path}: bad sidecar magic {found!r}")
    if version != 1:
        raise PartitionError(f"{path}: unsupported sidecar version {version}")
    expected = _SIDE_HEADER.size + 8 * row_ints * count
    if len(body) != expected:
        raise PartitionError(
            f"{path}: sidecar length {len(body)} != declared {expected}"
        )
    return np.frombuffer(
        body, dtype="<i8", offset=_SIDE_HEADER.size
    ).astype(np.int64).reshape(-1, row_ints)


@dataclass(frozen=True)
class ShardInfo:
    """One shard's manifest entry (paths relative to the directory)."""

    shard_id: int
    lo: int             #: owned vertex range [lo, hi)
    hi: int
    image: str          #: .rgr file name
    tau: str            #: trussness sidecar file name
    edges: int          #: owned edges
    cut_edges: int      #: owned edges whose other endpoint lives elsewhere


@dataclass(frozen=True)
class PartitionManifest:
    """The routing table of one partition directory."""

    directory: str
    version: int
    n: int
    m: int
    k_max: int
    boundaries: Tuple[int, ...]   #: len(shards) + 1, [0, ..., n]
    shards: Tuple[ShardInfo, ...]
    cut_table: str
    cut_edges: int

    def shard_of(self, v: int) -> int:
        """The shard owning vertex *v*."""
        if not 0 <= v < max(self.n, 1):
            raise PartitionError(f"vertex {v} outside [0, {self.n})")
        return bisect_right(self.boundaries, v) - 1

    def shard_path(self, shard: ShardInfo) -> str:
        return os.path.join(self.directory, shard.image)

    def tau_path(self, shard: ShardInfo) -> str:
        return os.path.join(self.directory, shard.tau)

    def load_shard(self, shard: ShardInfo) -> Tuple[Graph, np.ndarray]:
        """Load one shard's image + trussness sidecar (validated)."""
        graph = read_rgr(self.shard_path(shard))
        tau = read_tau_sidecar(self.tau_path(shard))
        if len(tau) != graph.m:
            raise PartitionError(
                f"{shard.image}: sidecar rows {len(tau)} != edges {graph.m}"
            )
        if graph.n != self.n:
            raise PartitionError(
                f"{shard.image}: shard image n={graph.n} != manifest n={self.n}"
            )
        return graph, tau


def partition_boundaries(graph: Graph, shards: int) -> List[int]:
    """Degree-balanced vertex-range boundaries (``shards + 1`` entries).

    Splits the owned-edge mass (edges counted at their min endpoint) into
    near-equal contiguous ranges; ties collapse to at least one vertex
    per shard when the graph allows it.
    """
    if shards < 1:
        raise PartitionError(f"shards must be >= 1, got {shards}")
    n = graph.n
    if shards > max(n, 1):
        raise PartitionError(
            f"cannot cut {n} vertices into {shards} shards"
        )
    if n == 0:
        return [0] * (shards + 1)
    owned = np.bincount(
        graph.edges[:, 0], minlength=n
    ) if graph.m else np.zeros(n, dtype=np.int64)
    mass = np.cumsum(owned)
    total = int(mass[-1]) if len(mass) else 0
    boundaries = [0]
    for i in range(1, shards):
        if total > 0:
            cut = int(np.searchsorted(mass, total * i / shards))
        else:
            cut = (n * i) // shards
        cut = max(cut, boundaries[-1] + 1)       # at least one vertex
        cut = min(cut, n - (shards - i))         # leave room for the rest
        boundaries.append(cut)
    boundaries.append(n)
    return boundaries


def write_partition(
    graph: Graph,
    directory: PathLike,
    shards: int,
    trussness: Optional[np.ndarray] = None,
) -> PartitionManifest:
    """Cut *graph* into *shards* vertex ranges under *directory*.

    Computes the trussness once (when not supplied) and distributes it
    into per-shard sidecars, so the router serves without recomputing.
    Returns the written manifest.
    """
    directory = str(directory)
    os.makedirs(directory, exist_ok=True)
    if trussness is None:
        trussness = truss_decomposition(graph)
    trussness = np.asarray(trussness, dtype=np.int64)
    if len(trussness) != graph.m:
        raise PartitionError(
            f"trussness length {len(trussness)} != graph edges {graph.m}"
        )
    boundaries = partition_boundaries(graph, shards)
    bounds = np.asarray(boundaries, dtype=np.int64)
    owners = (
        np.searchsorted(bounds, graph.edges[:, 0], side="right") - 1
        if graph.m else np.zeros(0, dtype=np.int64)
    )
    peers = (
        np.searchsorted(bounds, graph.edges[:, 1], side="right") - 1
        if graph.m else np.zeros(0, dtype=np.int64)
    )
    cut_mask = owners != peers
    cut_rows = np.column_stack([
        graph.edges[cut_mask], owners[cut_mask], peers[cut_mask],
    ]) if graph.m else np.zeros((0, 4), dtype=np.int64)
    write_cut_table(os.path.join(directory, CUT_TABLE_NAME), cut_rows)

    infos: List[ShardInfo] = []
    for shard_id in range(shards):
        mask = owners == shard_id
        # The masked rows keep the parent's lexicographic order, which is
        # exactly Graph.from_edges's canonical order — so the sidecar
        # values below stay aligned with the shard image's edge ids.
        shard_edges = graph.edges[mask]
        shard_graph = Graph(graph.n, shard_edges)
        image_name = f"shard-{shard_id:04d}.rgr"
        tau_name = f"shard-{shard_id:04d}.tau"
        write_rgr(shard_graph, os.path.join(directory, image_name))
        write_tau_sidecar(
            os.path.join(directory, tau_name), trussness[mask]
        )
        infos.append(ShardInfo(
            shard_id=shard_id,
            lo=boundaries[shard_id],
            hi=boundaries[shard_id + 1],
            image=image_name,
            tau=tau_name,
            edges=int(mask.sum()),
            cut_edges=int((cut_mask & mask).sum()),
        ))

    manifest = PartitionManifest(
        directory=directory,
        version=_MANIFEST_VERSION,
        n=graph.n,
        m=graph.m,
        k_max=int(trussness.max()) if graph.m else 0,
        boundaries=tuple(boundaries),
        shards=tuple(infos),
        cut_table=CUT_TABLE_NAME,
        cut_edges=int(cut_mask.sum()),
    )
    _write_manifest(manifest)
    return manifest


def _write_manifest(manifest: PartitionManifest) -> None:
    payload: Dict = {
        "version": manifest.version,
        "n": manifest.n,
        "m": manifest.m,
        "k_max": manifest.k_max,
        "boundaries": list(manifest.boundaries),
        "cut_table": manifest.cut_table,
        "cut_edges": manifest.cut_edges,
        "shards": [
            {
                "id": shard.shard_id,
                "lo": shard.lo,
                "hi": shard.hi,
                "image": shard.image,
                "tau": shard.tau,
                "edges": shard.edges,
                "cut_edges": shard.cut_edges,
            }
            for shard in manifest.shards
        ],
    }
    path = os.path.join(manifest.directory, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_manifest(path: PathLike) -> PartitionManifest:
    """Load and validate a partition manifest.

    *path* may be the manifest file or its directory. Validation covers
    the routing invariants the router relies on — monotone boundaries
    covering ``[0, n]``, contiguous shard ranges, edge counts summing to
    ``m`` — not the shard payloads (their ``.rgr``/sidecar CRCs are
    checked when loaded).
    """
    path = str(path)
    if os.path.isdir(path):
        directory, manifest_path = path, os.path.join(path, MANIFEST_NAME)
    else:
        directory, manifest_path = os.path.dirname(path) or ".", path
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise PartitionError(f"{manifest_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PartitionError(
            f"{manifest_path}: not valid JSON ({exc})"
        ) from exc
    if payload.get("version") != _MANIFEST_VERSION:
        raise PartitionError(
            f"{manifest_path}: unsupported manifest version "
            f"{payload.get('version')!r}"
        )
    try:
        boundaries = tuple(int(b) for b in payload["boundaries"])
        shards = tuple(
            ShardInfo(
                shard_id=int(entry["id"]),
                lo=int(entry["lo"]),
                hi=int(entry["hi"]),
                image=str(entry["image"]),
                tau=str(entry["tau"]),
                edges=int(entry["edges"]),
                cut_edges=int(entry["cut_edges"]),
            )
            for entry in payload["shards"]
        )
        manifest = PartitionManifest(
            directory=directory,
            version=int(payload["version"]),
            n=int(payload["n"]),
            m=int(payload["m"]),
            k_max=int(payload["k_max"]),
            boundaries=boundaries,
            shards=shards,
            cut_table=str(payload["cut_table"]),
            cut_edges=int(payload["cut_edges"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PartitionError(f"{manifest_path}: malformed manifest: {exc}") from exc
    if not manifest.shards:
        raise PartitionError(f"{manifest_path}: manifest lists no shards")
    if len(boundaries) != len(shards) + 1:
        raise PartitionError(
            f"{manifest_path}: {len(boundaries)} boundaries for "
            f"{len(shards)} shards"
        )
    if boundaries[0] != 0 or boundaries[-1] != manifest.n:
        raise PartitionError(
            f"{manifest_path}: boundaries must span [0, {manifest.n}]"
        )
    if any(b > c for b, c in zip(boundaries, boundaries[1:])):
        raise PartitionError(f"{manifest_path}: boundaries must not decrease")
    for index, shard in enumerate(manifest.shards):
        if shard.shard_id != index:
            raise PartitionError(
                f"{manifest_path}: shard ids must be dense, got "
                f"{shard.shard_id} at {index}"
            )
        if (shard.lo, shard.hi) != (boundaries[index], boundaries[index + 1]):
            raise PartitionError(
                f"{manifest_path}: shard {index} range disagrees with "
                f"boundaries"
            )
    if sum(shard.edges for shard in manifest.shards) != manifest.m:
        raise PartitionError(
            f"{manifest_path}: shard edge counts do not sum to m={manifest.m}"
        )
    return manifest
