"""Per-request query execution against a pinned snapshot.

Every request runs against exactly one pinned :class:`Snapshot` through a
fresh **read-only** :class:`~repro.engine.context.ExecutionContext`: the
context's device registers the snapshot's arrays as extents
(``serve.adj`` / ``serve.adj_eids`` / ``serve.tau`` / ``serve.edges``)
and every byte the query logically reads is charged to that request's
ledger — so an answer's ``io`` field is its honest Aggarwal–Vitter bill,
and a write-side touch (a bug mutating served state) raises
:class:`~repro.errors.DeviceError` instead of corrupting the snapshot.

The point queries are the cheap ones the truss index exists for:
``membership``/``trussness`` read one adjacency slice (the smaller
endpoint's neighbour list, ``O(deg/B)`` blocks) plus one trussness cell —
*o(edges)*, asserted in the ``serve`` benchmark section. ``community``
and ``hierarchy`` are the linear-work queries: one sequential pass over
the trussness extent (plus the edge table when endpoints are needed).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.components import (
    triangle_connected_components,
    vertex_connected_components,
)
from ..applications.community import truss_community
from ..approx.engine import ApproxEngine
from ..approx.estimate import Estimate
from ..approx.estimators import AdjacencyProbe
from ..engine.config import EngineConfig
from ..engine.context import ExecutionContext
from ..errors import ServeError
from ..observability.metrics import global_metrics
from ..observability.tracer import trace_span
from .cache import ResultCache
from .protocol import ok_envelope, request_id_of, validate_request
from .snapshot import Snapshot, SnapshotManager

#: Latency-flavoured buckets for the ``serve.query_seconds`` histogram.
LATENCY_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


@dataclass(frozen=True)
class QueryAnswer:
    """A decoded answer envelope (convenience for python callers)."""

    op: str
    result: Dict[str, Any]
    snapshot_id: int
    wal_seq: int
    read_ios: int
    write_ios: int
    elapsed_ms: float

    @classmethod
    def from_envelope(cls, envelope: Dict[str, Any]) -> "QueryAnswer":
        if not envelope.get("ok"):
            error = envelope.get("error", {})
            raise ServeError(
                f"{error.get('type', 'error')}: {error.get('message', '')}"
            )
        snapshot = envelope.get("snapshot", {})
        io = envelope.get("io", {})
        return cls(
            op=envelope["op"],
            result=envelope["result"],
            snapshot_id=int(snapshot.get("id", 0)),
            wal_seq=int(snapshot.get("wal_seq", 0)),
            read_ios=int(io.get("read_ios", 0)),
            write_ios=int(io.get("write_ios", 0)),
            elapsed_ms=float(envelope.get("elapsed_ms", 0.0)),
        )


class _SnapshotReader:
    """Charged access paths over one pinned snapshot.

    Registers the snapshot's arrays as extents on the request's device;
    actual payloads come straight from the shared numpy arrays (the
    simulator's residency model — see ``storage/device.py``), so readers
    share memory while each request pays its own block bill.
    """

    def __init__(self, snapshot: Snapshot, context: ExecutionContext) -> None:
        self.snapshot = snapshot
        graph = snapshot.graph
        self.graph = graph
        device = context.device_for(graph.n)
        self._device = device
        self._adj = device.allocate("serve.adj", 8 * len(graph.adj))
        self._adj_eids = device.allocate("serve.adj_eids", 8 * len(graph.adj))
        self._tau = device.allocate("serve.tau", 8 * graph.m)
        self._edges = device.allocate("serve.edges", 16 * graph.m)
        adopt = getattr(device, "adopt_mapping", None)
        if adopt is not None:
            # Mapping-capable backend (mmap): a snapshot loaded through
            # read_rgr_mapped keeps its CSR as read-only views over one
            # file mapping, which every pinned query shares — tell the
            # per-query device so its physical ledger reflects that.
            for extent, view in (
                (self._adj, graph.adj),
                (self._adj_eids, graph.adj_eids),
                (self._edges, graph.edges.reshape(-1)),
            ):
                if not view.flags.writeable:
                    adopt(extent, view)
        self._approx_probe: Optional[AdjacencyProbe] = None

    def approx_probe(self) -> AdjacencyProbe:
        """This request's charged estimator probe (billing to its device)."""
        if self._approx_probe is None:
            self._approx_probe = AdjacencyProbe(
                self.graph, self._device, name="serve.approx"
            )
        return self._approx_probe

    def check_vertex(self, v: int, name: str) -> int:
        if not 0 <= v < self.graph.n:
            raise ServeError(
                f"vertex {name}={v} out of range [0, {self.graph.n})"
            )
        return v

    def edge_lookup(self, u: int, v: int) -> int:
        """Edge id of ``(u, v)`` or ``-1``, charging the neighbour probe.

        Reads the smaller-degree endpoint's adjacency slice (the classic
        adjacency-probe bound: ``O(min_deg / B)`` blocks).
        """
        graph = self.graph
        if graph.degree(v) < graph.degree(u):
            u, v = v, u
        start = int(graph.offsets[u])
        degree = graph.degree(u)
        self._device.touch_read(self._adj, 8 * start, 8 * degree)
        nbrs = graph.neighbors(u)
        pos = int(np.searchsorted(nbrs, v))
        if pos >= degree or int(nbrs[pos]) != v:
            return -1
        self._device.touch_read(self._adj_eids, 8 * (start + pos), 8)
        return int(graph.neighbor_eids(u)[pos])

    def tau_of(self, eid: int) -> int:
        """One trussness cell (a single indexed block touch)."""
        self._device.touch_read(self._tau, 8 * eid, 8)
        return int(self.snapshot.trussness[eid])

    def scan_tau(self) -> np.ndarray:
        """The whole trussness array: one sequential extent pass."""
        self._device.touch_read(self._tau, 0, 8 * self.graph.m)
        return self.snapshot.trussness

    def scan_edges(self, eids: Optional[np.ndarray] = None) -> np.ndarray:
        """Edge endpoint rows (all, or the selected ids), charged."""
        if eids is None:
            self._device.touch_read(self._edges, 0, 16 * self.graph.m)
            return self.graph.edges
        eids = np.asarray(eids, dtype=np.int64)
        self._device.touch_read_batch(self._edges, 16 * eids, 16)
        return self.graph.edges[eids]


class QueryEngine:
    """Executes protocol requests against a :class:`SnapshotManager`.

    Thread-safe: each :meth:`execute` pins its own snapshot and builds its
    own read-only context/device, so the server can dispatch queries onto
    worker threads freely while the promoter publishes.
    """

    def __init__(
        self,
        manager: SnapshotManager,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.manager = manager
        self.config = (config if config is not None else EngineConfig()).validate()
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.serve_cache_entries)
            if self.config.serve_cache_entries > 0
            else None
        )
        self._approx_lock = threading.Lock()
        self._approx: Dict[int, ApproxEngine] = {}
        manager.add_retire_listener(self._on_snapshot_retired)

    def _on_snapshot_retired(self, snapshot_id: int) -> None:
        """Drop per-snapshot derived state the moment a version retires."""
        if self.cache is not None:
            self.cache.evict_snapshot(snapshot_id)
        with self._approx_lock:
            engine = self._approx.pop(snapshot_id, None)
        if engine is not None:
            engine.close()

    # ------------------------------------------------------------------ #
    # protocol entry point
    # ------------------------------------------------------------------ #

    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one request dict with a response envelope.

        Raises :class:`ServeError` for malformed requests (the server
        wraps those in ``bad_request`` envelopes); unexpected exceptions
        propagate (wrapped as ``internal`` by the server).
        """
        request_id = request_id_of(request)
        op, params = validate_request(request)
        if op == "shutdown":
            raise ServeError("shutdown is a server operation, not a query")
        start = time.perf_counter()
        cache_key = None
        with self.manager.pinned() as snapshot:
            if self.cache is not None:
                cache_key = ResultCache.key(snapshot.snapshot_id, op, params)
                hit = self.cache.get(cache_key)
                if hit is not None:
                    # Replay the memoised answer: the io field stays the
                    # original bill (the honest cost of computing it); the
                    # hit itself touches no device.
                    hit["id"] = request_id
                    hit["cached"] = True
                    global_metrics().counter("serve.requests", op=op).inc()
                    return hit
            context = ExecutionContext(self.config, readonly=True)
            try:
                reader = _SnapshotReader(snapshot, context)
                with trace_span("serve.query", kind="query", op=op):
                    result = self._dispatch(op, params, reader, context)
                bill = context.stats.snapshot()
            finally:
                context.close()
            elapsed = time.perf_counter() - start
            envelope = ok_envelope(
                request_id,
                op,
                result,
                {"id": snapshot.snapshot_id, "wal_seq": snapshot.wal_seq},
                {
                    "read_ios": bill.read_ios,
                    "write_ios": bill.write_ios,
                    "bytes_read": bill.bytes_read,
                },
                elapsed * 1000.0,
            )
            if cache_key is not None:
                # Inside the pin: the retire listener cannot run for this
                # snapshot until we unpin, so the entry can never outlive
                # its eviction.
                stored = dict(envelope)
                stored.pop("id", None)
                self.cache.put(cache_key, stored)
        metrics = global_metrics()
        metrics.counter("serve.requests", op=op).inc()
        metrics.counter("serve.charged_read_ios", op=op).inc(bill.read_ios)
        metrics.histogram(
            "serve.query_seconds", buckets=LATENCY_BUCKETS
        ).observe(elapsed)
        return envelope

    def _dispatch(
        self,
        op: str,
        params: Dict[str, Any],
        reader: _SnapshotReader,
        context: ExecutionContext,
    ) -> Dict[str, Any]:
        approx = params.get("precision") == "approx"
        if op == "membership":
            if approx:
                return self._membership_approx(
                    reader, params["u"], params["v"], params["k"]
                )
            return self._membership(reader, params["u"], params["v"], params["k"])
        if op == "trussness":
            if approx:
                return self._trussness_approx(reader, params["u"], params["v"])
            return self._trussness(reader, params["u"], params["v"])
        if op == "community":
            return self._community(
                reader, params["q"], params["k"], params["connectivity"],
                params["include_edges"], context,
            )
        if op == "hierarchy":
            return self._hierarchy(reader, params["k"])
        if op == "export":
            return self._export(reader, params["k"])
        if op == "stats":
            if approx:
                return self._stats_approx(reader)
            return self._stats(reader)
        raise ServeError(f"unhandled op {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # point queries (o(edges) charged I/O)
    # ------------------------------------------------------------------ #

    def _trussness(self, reader, u: int, v: int) -> Dict[str, Any]:
        reader.check_vertex(u, "u")
        reader.check_vertex(v, "v")
        if u == v:
            raise ServeError("u and v must differ")
        eid = reader.edge_lookup(u, v)
        if eid < 0:
            return {"present": False, "trussness": None}
        return {"present": True, "trussness": reader.tau_of(eid)}

    def _membership(self, reader, u: int, v: int, k: int) -> Dict[str, Any]:
        answer = self._trussness(reader, u, v)
        tau = answer["trussness"]
        answer["k"] = k
        answer["member"] = tau is not None and tau >= k
        return answer

    # ------------------------------------------------------------------ #
    # approximate tier (precision="approx": sampled state + small probes)
    # ------------------------------------------------------------------ #

    def _approx_for(self, reader: "_SnapshotReader") -> ApproxEngine:
        """The snapshot's cached :class:`ApproxEngine`, built on demand.

        The sampled state is built once per snapshot — the first approx
        request pays the sampling bill on its own envelope; every later
        request reuses the state and pays only its per-edge probe. The
        engine is dropped (with the result cache) when the snapshot
        retires.
        """
        snapshot = reader.snapshot
        with self._approx_lock:
            engine = self._approx.get(snapshot.snapshot_id)
            if engine is None:
                engine = ApproxEngine(snapshot.graph, config=self.config)
                self._approx[snapshot.snapshot_id] = engine
            engine.build(reader.approx_probe())
        return engine

    def _trussness_approx(self, reader, u: int, v: int) -> Dict[str, Any]:
        reader.check_vertex(u, "u")
        reader.check_vertex(v, "v")
        if u == v:
            raise ServeError("u and v must differ")
        engine = self._approx_for(reader)
        estimate = engine.trussness(u, v, probe=reader.approx_probe())
        if estimate is None:
            return {"present": False, "trussness": None, "precision": "approx"}
        return {"present": True, "precision": "approx", **estimate.to_dict()}

    def _membership_approx(
        self, reader, u: int, v: int, k: int
    ) -> Dict[str, Any]:
        reader.check_vertex(u, "u")
        reader.check_vertex(v, "v")
        if u == v:
            raise ServeError("u and v must differ")
        engine = self._approx_for(reader)
        probe = reader.approx_probe()
        support = engine.edge_support(u, v, probe=probe)
        if support is None:
            absent = Estimate.exact(0.0)
            return {
                "present": False, "k": k, "member": False,
                "likelihood": 0.0, "precision": "approx",
                **absent.to_dict(),
            }
        likelihood = engine.membership_likelihood(
            u, v, k, support_estimate=support
        )
        return {
            "present": True, "k": k,
            "member": bool(likelihood.value >= 0.5),
            "likelihood": likelihood.value, "precision": "approx",
            **likelihood.to_dict(),
        }

    def _stats_approx(self, reader) -> Dict[str, Any]:
        snapshot = reader.snapshot
        engine = self._approx_for(reader)
        return {
            "n": snapshot.graph.n,
            "m": snapshot.graph.m,
            "snapshot_id": snapshot.snapshot_id,
            "wal_seq": snapshot.wal_seq,
            "precision": "approx",
            "k_max": engine.kmax().to_dict(),
            "triangles": engine.triangles().to_dict(),
            "max_support": engine.max_support().to_dict(),
            "build_io": engine.build_charged_io,
        }

    # ------------------------------------------------------------------ #
    # linear-work queries
    # ------------------------------------------------------------------ #

    def _community(
        self,
        reader,
        q: int,
        k: Optional[int],
        connectivity: str,
        include_edges: bool,
        context: ExecutionContext,
    ) -> Dict[str, Any]:
        reader.check_vertex(q, "q")
        graph = reader.graph
        values = reader.scan_tau()
        if k is None:
            # Maximum-trussness community: the decreasing-trussness sweep
            # reads every edge's endpoints alongside its trussness. The
            # request's (read-only) context rides along so the search
            # spans/charges land on this request's ledger.
            reader.scan_edges()
            found = truss_community(
                graph, [q], connectivity=connectivity, trussness=values,
                context=context,
            )
            if found is None:
                return {"found": False}
            return self._community_result(
                found.k, found.edges, found.vertices, include_edges
            )
        # Fixed-k membership community: the connected component of the
        # trussness >= k subgraph containing q.
        eids = np.nonzero(values >= k)[0]
        rows = reader.scan_edges(eids)
        pairs = [(int(a), int(b)) for a, b in rows]
        split = (
            vertex_connected_components
            if connectivity == "vertex"
            else triangle_connected_components
        )
        for component in split(pairs):
            vertices = sorted({x for edge in component for x in edge})
            if q in vertices:
                return self._community_result(
                    k, component, vertices, include_edges
                )
        return {"found": False}

    @staticmethod
    def _community_result(
        k: int,
        edges: List[Tuple[int, int]],
        vertices: List[int],
        include_edges: bool,
    ) -> Dict[str, Any]:
        result = {
            "found": True,
            "k": int(k),
            "size": len(vertices),
            "edge_count": len(edges),
            "vertices": [int(v) for v in vertices],
        }
        if include_edges:
            result["edges"] = [[int(a), int(b)] for a, b in sorted(edges)]
        return result

    def _hierarchy(self, reader, k: Optional[int]) -> Dict[str, Any]:
        values = reader.scan_tau()
        if k is None:
            if len(values) == 0:
                return {"k_max": 0, "levels": {}}
            counts = np.bincount(values)
            levels = {
                str(level): int(count)
                for level, count in enumerate(counts)
                if count and level >= 2
            }
            return {"k_max": int(values.max()), "levels": levels}
        eids = np.nonzero(values >= k)[0]
        rows = reader.scan_edges(eids)
        pairs = [(int(a), int(b)) for a, b in rows]
        components = vertex_connected_components(pairs)
        return {
            "k": int(k),
            "edges": len(pairs),
            "communities": len(components),
        }

    def _export(self, reader, k: Optional[int]) -> Dict[str, Any]:
        """Charged dump of (edges, trussness) rows — the router's gather
        primitive: per-shard exports union to the exact full answer set
        because edge ownership is a partition."""
        values = reader.scan_tau()
        if k is None:
            rows = reader.scan_edges()
            taus = values
        else:
            eids = np.nonzero(values >= k)[0]
            rows = reader.scan_edges(eids)
            taus = values[eids]
        return {
            "edges": [[int(a), int(b)] for a, b in rows],
            "trussness": [int(t) for t in taus],
        }

    def _stats(self, reader) -> Dict[str, Any]:
        snapshot = reader.snapshot
        return {
            "n": snapshot.graph.n,
            "m": snapshot.graph.m,
            "k_max": snapshot.k_max,
            "snapshot_id": snapshot.snapshot_id,
            "wal_seq": snapshot.wal_seq,
        }
