"""MVCC snapshots for the query service: pin → promote → retire.

A :class:`Snapshot` is an immutable bundle of everything a query needs —
the graph image, the per-edge trussness array, ``k_max`` and the WAL
frontier it reflects. The :class:`SnapshotManager` hands the *current*
snapshot to readers under a refcount (:meth:`SnapshotManager.pinned`), so
a request keeps one consistent view for its whole lifetime no matter how
many times the writer side advances underneath it.

Writers never touch the manager directly: they append through
:class:`~repro.persistence.recovery.DurableMaintenance` (or the ingest
pipeline layered on it), and the background :class:`Promoter` turns the
durable checkpoint + WAL tail into fresh snapshots — read-only scans
(:func:`~repro.persistence.wal.read_wal`, never ``repair_wal``, which
truncates a live writer's log) followed by one atomic publish. Readers
therefore never block on writers and vice versa; an old snapshot is
*retired* (dropped from the manager, reclaimed by GC) the moment its last
pin drains.

Snapshot ids are strictly increasing and the published ``wal_seq`` never
decreases — the monotonicity the isolation tests assert.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from ..baselines.inmemory import truss_decomposition
from ..dynamic.checkpoint import read_checkpoint_image
from ..errors import GraphFormatError, ServeError
from ..graph.memgraph import Graph
from ..observability.metrics import global_metrics
from ..observability.tracer import trace_span
from ..persistence.recovery import CHECKPOINT_NAME, WAL_NAME
from ..persistence.wal import read_wal


@dataclass(frozen=True)
class Snapshot:
    """One immutable published version of the served decomposition.

    Attributes
    ----------
    snapshot_id:
        Strictly-increasing publish counter (1 for the initial snapshot).
    graph:
        The frozen CSR graph image (dense edge ids).
    trussness:
        Per-edge trussness aligned with ``graph``'s edge ids.
    k_max:
        Maximum trussness (2 for a triangle-free graph, 0 when empty).
    wal_seq:
        The last WAL sequence number folded into this snapshot; answers
        pinned here are exact for the update history up to this record.
    """

    snapshot_id: int
    graph: Graph
    trussness: np.ndarray
    k_max: int
    wal_seq: int

    def __post_init__(self) -> None:
        if len(self.trussness) != self.graph.m:
            raise ServeError(
                f"trussness length {len(self.trussness)} != graph edges "
                f"{self.graph.m}"
            )


def _snapshot_from_graph(
    snapshot_id: int,
    graph: Graph,
    wal_seq: int,
    trussness: Optional[np.ndarray] = None,
) -> Snapshot:
    if trussness is None:
        # Snapshot preparation is writer-side preprocessing, like building
        # an .rgr image: uncharged, off the readers' bills.
        trussness = truss_decomposition(graph)
    trussness = np.asarray(trussness, dtype=np.int64)
    k_max = int(trussness.max()) if len(trussness) else 0
    return Snapshot(
        snapshot_id=snapshot_id,
        graph=graph,
        trussness=trussness,
        k_max=k_max,
        wal_seq=int(wal_seq),
    )


class SnapshotManager:
    """Refcounted publish/pin/retire lifecycle for :class:`Snapshot`\\ s.

    Thread-safe: queries pin from server worker threads while the
    promoter publishes. The lock only guards the (tiny) bookkeeping —
    query execution and snapshot construction run outside it.

    Example
    -------
    >>> from repro.graph.generators import paper_example_graph
    >>> manager = SnapshotManager.initial(paper_example_graph())
    >>> with manager.pinned() as snap:
    ...     snap.snapshot_id, snap.k_max
    (1, 4)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Snapshot] = None
        # snapshot_id -> live pin count (current snapshot always tracked)
        self._pins: Dict[int, int] = {}
        self._by_id: Dict[int, Snapshot] = {}
        self._next_id = 1
        self.published = 0
        self.retired = 0
        self._retire_listeners: List[Callable[[int], None]] = []

    def add_retire_listener(self, listener: Callable[[int], None]) -> None:
        """Register ``listener(snapshot_id)`` called after each retire.

        Listeners run *outside* the manager lock (a listener may pin,
        publish or inspect the manager without deadlocking) but on the
        retiring thread, so per-snapshot caches are dropped before the
        retire call returns.
        """
        with self._lock:
            self._retire_listeners.append(listener)

    def _notify_retired(self, snapshot_ids: List[int]) -> None:
        for snapshot_id in snapshot_ids:
            for listener in list(self._retire_listeners):
                listener(snapshot_id)

    @classmethod
    def initial(
        cls,
        graph: Graph,
        trussness: Optional[np.ndarray] = None,
        wal_seq: int = 0,
    ) -> "SnapshotManager":
        """A manager already holding the first published snapshot."""
        manager = cls()
        manager.publish(graph, trussness=trussness, wal_seq=wal_seq)
        return manager

    # ------------------------------------------------------------------ #
    # publish / retire (writer side)
    # ------------------------------------------------------------------ #

    def publish(
        self,
        graph: Graph,
        trussness: Optional[np.ndarray] = None,
        wal_seq: int = 0,
    ) -> Snapshot:
        """Atomically make a new snapshot current; returns it.

        The snapshot (including its trussness, computed here when not
        supplied) is built *outside* the lock; pinned readers keep serving
        the old version untouched. ``wal_seq`` must not go backwards.
        """
        with self._lock:
            snapshot_id = self._next_id
        snapshot = _snapshot_from_graph(snapshot_id, graph, wal_seq, trussness)
        retired: List[int] = []
        with self._lock:
            if (
                self._current is not None
                and snapshot.wal_seq < self._current.wal_seq
            ):
                raise ServeError(
                    f"snapshot wal_seq went backwards: "
                    f"{snapshot.wal_seq} < {self._current.wal_seq}"
                )
            self._next_id = snapshot_id + 1
            previous = self._current
            self._current = snapshot
            self._by_id[snapshot_id] = snapshot
            self._pins.setdefault(snapshot_id, 0)
            self.published += 1
            if previous is not None and self._pins[previous.snapshot_id] == 0:
                self._retire_locked(previous.snapshot_id)
                retired.append(previous.snapshot_id)
        self._notify_retired(retired)
        metrics = global_metrics()
        metrics.counter("serve.promotions").inc()
        metrics.gauge("serve.snapshot_id").set(snapshot_id)
        metrics.gauge("serve.snapshot_wal_seq").set(snapshot.wal_seq)
        return snapshot

    def _retire_locked(self, snapshot_id: int) -> None:
        del self._by_id[snapshot_id]
        del self._pins[snapshot_id]
        self.retired += 1
        global_metrics().counter("serve.snapshots_retired").inc()

    # ------------------------------------------------------------------ #
    # pin / unpin (reader side)
    # ------------------------------------------------------------------ #

    def pin(self) -> Snapshot:
        """Take a reference on the current snapshot (pair with unpin)."""
        with self._lock:
            if self._current is None:
                raise ServeError("no snapshot published yet")
            snapshot = self._current
            self._pins[snapshot.snapshot_id] += 1
            return snapshot

    def unpin(self, snapshot: Snapshot) -> None:
        """Release a reference; retires superseded drained snapshots."""
        retired: List[int] = []
        with self._lock:
            snapshot_id = snapshot.snapshot_id
            count = self._pins.get(snapshot_id)
            if not count:
                raise ServeError(f"snapshot {snapshot_id} is not pinned")
            self._pins[snapshot_id] = count - 1
            if (
                count == 1
                and self._current is not None
                and self._current.snapshot_id != snapshot_id
            ):
                self._retire_locked(snapshot_id)
                retired.append(snapshot_id)
        self._notify_retired(retired)

    @contextlib.contextmanager
    def pinned(self) -> Iterator[Snapshot]:
        """Scope one pinned snapshot: the request's consistent view."""
        snapshot = self.pin()
        try:
            yield snapshot
        finally:
            self.unpin(snapshot)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def current(self) -> Optional[Snapshot]:
        """The current snapshot without pinning (frontier checks only)."""
        with self._lock:
            return self._current

    def live_snapshots(self) -> List[int]:
        """Ids still tracked (current + superseded-but-pinned), sorted."""
        with self._lock:
            return sorted(self._by_id)

    def pin_count(self, snapshot_id: int) -> int:
        """Live pins on one snapshot (0 for retired/unknown ids)."""
        with self._lock:
            return self._pins.get(snapshot_id, 0)


@dataclass
class PromotionStats:
    """Counters of one promoter lifetime."""

    attempts: int = 0     #: promote_once calls (wakeups + polls)
    published: int = 0    #: snapshots actually published
    skipped: int = 0      #: wakeups finding no new frontier
    retries: int = 0      #: checkpoint/WAL reset races re-read
    failures: int = 0     #: unreadable checkpoint/WAL (retried next tick)
    last_error: str = field(default="", repr=False)


class Promoter:
    """Background thread replaying durable state into fresh snapshots.

    Watches a :class:`~repro.persistence.recovery.DurableMaintenance`
    directory (``state.ckpt`` + ``wal.log``): each promotion reads the
    checkpoint image, scans the WAL **read-only** for records past the
    checkpoint's ``wal_seq``, folds them into an edge set, and publishes
    the result. The scan tolerates a concurrent writer: a torn tail reads
    as the surviving record prefix, and a checkpoint that resets the log
    between the two reads shows up as a sequence gap, which triggers one
    re-read of the (now newer) checkpoint.

    ``interval`` is the poll period; :meth:`notify` (wired to the ingest
    pipeline's ``on_batch_applied`` hook) wakes the thread early so fresh
    batches become visible without waiting out the poll.
    """

    def __init__(
        self,
        manager: SnapshotManager,
        directory: str,
        interval: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ServeError(f"promote interval must be positive, got {interval}")
        self.manager = manager
        self.directory = str(directory)
        self.checkpoint_path = os.path.join(self.directory, CHECKPOINT_NAME)
        self.wal_path = os.path.join(self.directory, WAL_NAME)
        self.interval = interval
        self.stats = PromotionStats()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> "Promoter":
        """Launch the promoter thread (daemonic; :meth:`stop` to join)."""
        if self._thread is not None:
            raise ServeError("promoter already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="snapshot-promoter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Signal and join the thread (idempotent)."""
        self._stop.set()
        self._wake.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()

    def notify(self, _ops: int = 0) -> None:
        """Wake the promoter early (ingest ``on_batch_applied`` signature)."""
        self._wake.set()

    def __enter__(self) -> "Promoter":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            self.promote_once()

    # -- one promotion --------------------------------------------------- #

    def promote_once(self) -> Optional[Snapshot]:
        """Publish a snapshot of the durable frontier; ``None`` if stale.

        Safe to call directly (tests drive it deterministically) or from
        the thread. Unreadable files — no checkpoint yet, a WAL caught
        mid-reset — are counted and retried on the next tick rather than
        raised: the writer owns those files and will finish its step.
        """
        self.stats.attempts += 1
        state = self._read_frontier()
        if state is None:
            return None
        frontier, n, edges = state
        current = self.manager.current()
        if current is not None and frontier <= current.wal_seq:
            self.stats.skipped += 1
            return None
        graph = Graph.from_edges(sorted(edges), n=n)
        with trace_span("serve.promote", kind="op", wal_seq=frontier,
                        edges=graph.m):
            snapshot = self.manager.publish(graph, wal_seq=frontier)
        self.stats.published += 1
        return snapshot

    def _read_frontier(self):
        """Read (checkpoint, WAL-tail) into ``(frontier, n, edge set)``."""
        for attempt in range(2):
            try:
                image = read_checkpoint_image(self.checkpoint_path)
            except (OSError, GraphFormatError) as exc:
                self.stats.failures += 1
                self.stats.last_error = repr(exc)
                return None
            try:
                if os.path.exists(self.wal_path):
                    records, _valid, _torn = read_wal(self.wal_path)
                else:
                    records = []
            except (OSError, GraphFormatError) as exc:
                self.stats.failures += 1
                self.stats.last_error = repr(exc)
                return None
            tail = [r for r in records if r.seq > image.wal_seq]
            if tail and tail[0].seq != image.wal_seq + 1:
                # A checkpoint reset the WAL between our two reads; the
                # missing records are inside the newer checkpoint image.
                self.stats.retries += 1
                continue
            break
        else:
            self.stats.failures += 1
            self.stats.last_error = "checkpoint/WAL kept racing"
            return None
        edges = {
            (int(u), int(v)) if u < v else (int(v), int(u))
            for u, v, _eid in image.edges
        }
        n = int(image.n)
        frontier = image.wal_seq
        for record in tail:
            frontier = record.seq
            for u, v in record.edges:
                pair = (u, v) if u < v else (v, u)
                if record.op == "insert":
                    edges.add(pair)
                    n = max(n, pair[1] + 1)
                else:
                    edges.discard(pair)
        return frontier, n, edges


def bootstrap_manager(
    directory: str,
    on_missing: Optional[Callable[[], Graph]] = None,
) -> SnapshotManager:
    """Build a manager from a durable directory's current frontier.

    Performs one synchronous promotion so the server starts with the
    freshest durable state. *on_missing* supplies a graph when the
    directory holds no checkpoint yet (fresh deployments).
    """
    manager = SnapshotManager()
    promoter = Promoter(manager, directory)
    if promoter.promote_once() is None:
        if on_missing is None:
            raise ServeError(
                f"{directory}: no readable checkpoint to serve from"
            )
        manager.publish(on_missing(), wal_seq=0)
    return manager
