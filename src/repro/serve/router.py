"""Scatter/gather routing over a partitioned graph.

:class:`ShardedRouter` serves the same protocol as
:class:`~repro.serve.engine.QueryEngine` — the server front end accepts
either — but executes against the per-shard images of a
:class:`~repro.serve.partition.PartitionManifest`:

* **point queries** (``membership``/``trussness``) route to the single
  shard owning the edge (the shard of the minimum endpoint, found by
  bisection over the manifest boundaries) — one shard consulted, one
  shard billed;
* **aggregates** (``stats``, level-profile ``hierarchy``) scatter to all
  shards concurrently and merge commutatively (sums / maxima are exact
  because edge ownership is a partition);
* **structure queries** (``community``, fixed-``k`` ``hierarchy``,
  ``export``) gather the relevant per-shard edge/trussness rows via each
  shard's charged ``export`` op, merge them into the global edge set, and
  finish with the same component logic the single-image engine uses —
  the union of shard exports *is* the full answer set, so answers are
  bit-identical to an unsharded engine over the same graph.

Sharded envelopes replace the single ``snapshot`` stamp with
``{"sharded": true, "parts": [...]}`` listing every consulted shard's
snapshot, and ``io`` is the **sum** of the consulted shards' bills.

**Partial failure.** A scatter/gather op tolerates individual shard
failures: the merge runs over the surviving shards and the envelope is
stamped ``"partial": true`` with ``"failed_shards": [ids...]`` so the
client knows the answer may be an under-approximation (a gather union
missing one shard's rows). Point ops still hard-fail — a single-shard
answer is either exact or an error, never partial. All shards failing
is an error.

``precision: "approx"`` is rejected here: the estimators sample
shard-local adjacency, which cannot see triangles whose edges cross
shard boundaries, so shard-local estimates do not compose into a sound
global interval. Approximate answers are a single-image feature.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.components import (
    triangle_connected_components,
    vertex_connected_components,
)
from ..applications.community import truss_community
from ..engine.config import EngineConfig
from ..errors import ServeError
from ..graph.memgraph import Graph
from ..observability.metrics import global_metrics
from ..observability.tracer import trace_span
from .engine import QueryEngine
from .partition import PartitionManifest, load_manifest
from .protocol import ok_envelope, request_id_of, validate_request
from .snapshot import SnapshotManager


class ShardedRouter:
    """Fan queries out to per-shard engines and merge the answers.

    Single-process multi-shard: every shard image is loaded into its own
    :class:`SnapshotManager` + :class:`QueryEngine`, and scatters run on
    a small thread pool. The execute() contract (request dict in,
    envelope out, :class:`ServeError` on bad requests) matches
    :class:`QueryEngine`, so :class:`~repro.serve.server.TrussServer`
    can front either.
    """

    def __init__(
        self,
        manifest: Union[PartitionManifest, str],
        config: Optional[EngineConfig] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if not isinstance(manifest, PartitionManifest):
            manifest = load_manifest(manifest)
        self.manifest = manifest
        self.config = (config if config is not None else EngineConfig()).validate()
        self.engines: List[QueryEngine] = []
        for shard in manifest.shards:
            graph, tau = manifest.load_shard(shard)
            manager = SnapshotManager.initial(graph, trussness=tau, wal_seq=0)
            self.engines.append(QueryEngine(manager, self.config))
        if max_workers is None:
            max_workers = min(len(self.engines), 8) or 1
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-shard"
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # protocol entry point
    # ------------------------------------------------------------------ #

    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one request dict with a (sharded) response envelope."""
        request_id = request_id_of(request)
        op, params = validate_request(request)
        if op == "shutdown":
            raise ServeError("shutdown is a server operation, not a query")
        if params.get("precision") == "approx":
            raise ServeError(
                "precision=approx is not available on a sharded deployment: "
                "shard-local samples cannot see cross-shard triangles"
            )
        start = time.perf_counter()
        failed: List[int] = []
        with trace_span("serve.route", kind="query", op=op):
            if op in ("membership", "trussness"):
                result, consulted = self._route_point(op, params)
            elif op == "stats":
                result, consulted, failed = self._merge_stats()
            elif op == "hierarchy":
                result, consulted, failed = self._merge_hierarchy(params["k"])
            elif op == "export":
                result, consulted, failed = self._merge_export(params["k"])
            elif op == "community":
                result, consulted, failed = self._merge_community(params)
            else:  # pragma: no cover
                raise ServeError(f"unhandled op {op!r}")
        elapsed = time.perf_counter() - start
        metrics = global_metrics()
        metrics.counter("serve.route_requests", op=op).inc()
        metrics.counter("serve.shards_consulted", op=op).inc(len(consulted))
        if failed:
            metrics.counter("serve.shards_failed", op=op).inc(len(failed))
        parts, io = self._merge_bills(consulted)
        envelope = ok_envelope(
            request_id,
            op,
            result,
            {"sharded": True, "parts": parts},
            io,
            elapsed * 1000.0,
        )
        if failed:
            envelope["partial"] = True
            envelope["failed_shards"] = failed
        return envelope

    # ------------------------------------------------------------------ #
    # routing primitives
    # ------------------------------------------------------------------ #

    def _check_vertex(self, v: int, name: str) -> int:
        if not 0 <= v < self.manifest.n:
            raise ServeError(
                f"vertex {name}={v} out of range [0, {self.manifest.n})"
            )
        return v

    def _ask(self, shard_id: int, request: Dict[str, Any]) -> Tuple[int, Dict]:
        """One shard's sub-envelope, tagged with its shard id."""
        return shard_id, self.engines[shard_id].execute(request)

    def _scatter(
        self, request: Dict[str, Any], shard_ids: Optional[Sequence[int]] = None
    ) -> Tuple[List[Tuple[int, Dict]], List[int]]:
        """Run *request* on the given shards concurrently.

        Returns ``(consulted, failed)`` in deterministic shard order:
        *consulted* holds the surviving ``(shard_id, envelope)`` pairs,
        *failed* the ids whose engines raised. Every shard failing is an
        error (there is nothing to merge), raised with the first failure
        chained for diagnosis.
        """
        if shard_ids is None:
            shard_ids = range(len(self.engines))
        shard_ids = list(shard_ids)
        futures = [
            self._pool.submit(self._ask, shard_id, request)
            for shard_id in shard_ids
        ]
        consulted: List[Tuple[int, Dict]] = []
        failed: List[int] = []
        first_error: Optional[BaseException] = None
        for shard_id, future in zip(shard_ids, futures):
            try:
                consulted.append(future.result())
            except Exception as exc:
                failed.append(shard_id)
                if first_error is None:
                    first_error = exc
        if failed and not consulted:
            raise ServeError(
                f"all shards failed (shards {failed}): {first_error!r}"
            ) from first_error
        return consulted, failed

    @staticmethod
    def _merge_bills(
        consulted: List[Tuple[int, Dict]]
    ) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
        parts = [
            {
                "shard": shard_id,
                "id": sub["snapshot"]["id"],
                "wal_seq": sub["snapshot"]["wal_seq"],
            }
            for shard_id, sub in consulted
        ]
        io = {"read_ios": 0, "write_ios": 0, "bytes_read": 0}
        for _, sub in consulted:
            for key in io:
                io[key] += int(sub["io"].get(key, 0))
        return parts, io

    # ------------------------------------------------------------------ #
    # per-op merges
    # ------------------------------------------------------------------ #

    def _route_point(
        self, op: str, params: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[Tuple[int, Dict]]]:
        u = self._check_vertex(params["u"], "u")
        v = self._check_vertex(params["v"], "v")
        if u == v:
            raise ServeError("u and v must differ")
        owner = self.manifest.shard_of(min(u, v))
        request: Dict[str, Any] = {"op": op, "u": u, "v": v}
        if op == "membership":
            request["k"] = params["k"]
        consulted = [self._ask(owner, request)]
        return consulted[0][1]["result"], consulted

    def _merge_stats(
        self,
    ) -> Tuple[Dict[str, Any], List[Tuple[int, Dict]], List[int]]:
        consulted, failed = self._scatter({"op": "stats"})
        result = {
            "n": self.manifest.n,
            "m": sum(sub["result"]["m"] for _, sub in consulted),
            "k_max": max(sub["result"]["k_max"] for _, sub in consulted),
            "shards": len(consulted),
        }
        return result, consulted, failed

    def _merge_hierarchy(
        self, k: Optional[int]
    ) -> Tuple[Dict[str, Any], List[Tuple[int, Dict]], List[int]]:
        if k is None:
            consulted, failed = self._scatter({"op": "hierarchy"})
            levels: Dict[str, int] = {}
            for _, sub in consulted:
                for level, count in sub["result"]["levels"].items():
                    levels[level] = levels.get(level, 0) + int(count)
            k_max = max(sub["result"]["k_max"] for _, sub in consulted)
            return {"k_max": k_max, "levels": dict(sorted(
                levels.items(), key=lambda item: int(item[0])
            ))}, consulted, failed
        # One fixed level: components need the global edge set — gather.
        pairs, _, consulted, failed = self._gather_rows(k)
        components = vertex_connected_components(pairs)
        return {
            "k": int(k),
            "edges": len(pairs),
            "communities": len(components),
        }, consulted, failed

    def _gather_rows(
        self, k: Optional[int]
    ) -> Tuple[
        List[Tuple[int, int]], np.ndarray, List[Tuple[int, Dict]], List[int]
    ]:
        """Gather (edges, trussness) from every shard, merged into global
        lexicographic edge order (= the unsharded engine's edge-id order)."""
        request: Dict[str, Any] = {"op": "export"}
        if k is not None:
            request["k"] = k
        consulted, failed = self._scatter(request)
        rows: List[List[int]] = []
        taus: List[int] = []
        for _, sub in consulted:
            rows.extend(sub["result"]["edges"])
            taus.extend(sub["result"]["trussness"])
        if not rows:
            return [], np.zeros(0, dtype=np.int64), consulted, failed
        array = np.asarray(rows, dtype=np.int64)
        tau = np.asarray(taus, dtype=np.int64)
        order = np.lexsort((array[:, 1], array[:, 0]))
        array, tau = array[order], tau[order]
        pairs = [(int(a), int(b)) for a, b in array]
        return pairs, tau, consulted, failed

    def _merge_export(
        self, k: Optional[int]
    ) -> Tuple[Dict[str, Any], List[Tuple[int, Dict]], List[int]]:
        pairs, tau, consulted, failed = self._gather_rows(k)
        return {
            "edges": [[a, b] for a, b in pairs],
            "trussness": [int(t) for t in tau],
        }, consulted, failed

    def _merge_community(
        self, params: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[Tuple[int, Dict]], List[int]]:
        q = self._check_vertex(params["q"], "q")
        k = params["k"]
        connectivity = params["connectivity"]
        include_edges = params["include_edges"]
        if k is None:
            # Maximum-trussness community: rebuild the full graph from the
            # shard exports (ownership partitions the edge set, so the
            # union is exact) and run the same sweep the engine runs.
            pairs, tau, consulted, failed = self._gather_rows(None)
            graph = Graph(self.manifest.n, np.asarray(pairs, dtype=np.int64)
                          if pairs else np.zeros((0, 2), dtype=np.int64))
            found = truss_community(
                graph, [q], connectivity=connectivity, trussness=tau
            )
            if found is None:
                return {"found": False}, consulted, failed
            return QueryEngine._community_result(
                found.k, found.edges, found.vertices, include_edges
            ), consulted, failed
        pairs, _, consulted, failed = self._gather_rows(k)
        split = (
            vertex_connected_components
            if connectivity == "vertex"
            else triangle_connected_components
        )
        for component in split(pairs):
            vertices = sorted({x for edge in component for x in edge})
            if q in vertices:
                return QueryEngine._community_result(
                    k, component, vertices, include_edges
                ), consulted, failed
        return {"found": False}, consulted, failed
