"""Blocking client for the query service (tests, CI scripts, benchmarks).

A thin socket wrapper speaking the newline-delimited JSON protocol:
:meth:`TrussClient.request` sends one request and blocks for its
response line; the convenience methods build the request dicts. Raising
on error envelopes is opt-in per call (``check=``) so tests can assert
error shapes.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from ..errors import ServeError
from .engine import QueryAnswer


class TrussClient:
    """One connection to a :class:`~repro.serve.server.TrussServer`.

    Example
    -------
    ::

        with TrussClient(host, port) as client:
            answer = client.membership(0, 4, k=3)
            print(answer.result["member"], answer.read_ios)
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._recv = self._sock.makefile("rb")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._recv.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TrussClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # raw protocol
    # ------------------------------------------------------------------ #

    def request_raw(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request dict, return the raw response envelope."""
        line = json.dumps(request, separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(line)
        response = self._recv.readline()
        if not response:
            raise ServeError("server closed the connection")
        return json.loads(response)

    def request(
        self, request: Dict[str, Any], check: bool = True
    ) -> QueryAnswer:
        """Send a request; decode into a :class:`QueryAnswer`.

        With *check* (default) an error envelope raises
        :class:`~repro.errors.ServeError`.
        """
        envelope = self.request_raw(request)
        if not check and not envelope.get("ok"):
            error = envelope.get("error", {})
            return QueryAnswer(
                op=str(request.get("op")),
                result={"error": error},
                snapshot_id=0, wal_seq=0, read_ios=0, write_ios=0,
                elapsed_ms=0.0,
            )
        return QueryAnswer.from_envelope(envelope)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def membership(
        self, u: int, v: int, k: int, precision: str = "exact", **extra
    ) -> QueryAnswer:
        """Is edge (u, v) in the k-truss? ``precision="approx"`` answers
        from sampled estimator state with a confidence interval."""
        return self.request({
            "op": "membership", "u": u, "v": v, "k": k,
            "precision": precision, **extra,
        })

    def trussness(
        self, u: int, v: int, precision: str = "exact", **extra
    ) -> QueryAnswer:
        """Trussness of edge (u, v); approx answers carry
        ``{estimate, ci, confidence, samples}`` instead of a point."""
        return self.request({
            "op": "trussness", "u": u, "v": v,
            "precision": precision, **extra,
        })

    def community(
        self,
        q: int,
        k: Optional[int] = None,
        connectivity: str = "vertex",
        include_edges: bool = False,
        **extra,
    ) -> QueryAnswer:
        request = {
            "op": "community", "q": q, "connectivity": connectivity,
            "include_edges": include_edges, **extra,
        }
        if k is not None:
            request["k"] = k
        return self.request(request)

    def hierarchy(self, k: Optional[int] = None, **extra) -> QueryAnswer:
        request = {"op": "hierarchy", **extra}
        if k is not None:
            request["k"] = k
        return self.request(request)

    def stats(self, precision: str = "exact", **extra) -> QueryAnswer:
        return self.request({"op": "stats", "precision": precision, **extra})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit; returns the raw ack."""
        return self.request_raw({"op": "shutdown"})
