"""Per-snapshot result cache: memoised answers for immutable versions.

A served answer is a pure function of ``(snapshot_id, op, params)`` —
snapshots are immutable and approx answers derive their per-edge RNG from
the configured seed — so memoisation is *exact*, not best-effort. The
cache is a thread-safe LRU keyed by the canonicalised request; entries
for a snapshot are dropped the moment the
:class:`~repro.serve.snapshot.SnapshotManager` retires it (wired through
``add_retire_listener``), so the cache never outlives the data.

Cache hits replay the stored envelope — including its original charged
I/O bill, which *is* the query's honest cost (the work was done once; a
hit costs zero device touches, surfaced by the
``cache.hit_ratio{extent=serve}`` gauge rather than by zeroing bills).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..observability.metrics import global_metrics

__all__ = ["ResultCache", "canonical_params"]


def canonical_params(params: Dict[str, Any]) -> Tuple:
    """A hashable, order-insensitive form of a request's parameters.

    >>> canonical_params({"v": 2, "u": 1}) == canonical_params({"u": 1, "v": 2})
    True
    >>> canonical_params({"ks": [2, 3]})
    (('ks', (2, 3)),)
    """
    return tuple(
        (key, tuple(value) if isinstance(value, list) else value)
        for key, value in sorted(params.items())
    )


class ResultCache:
    """Thread-safe LRU of response envelopes, scoped by snapshot id.

    >>> cache = ResultCache(capacity=2)
    >>> key = cache.key(1, "stats", {})
    >>> cache.get(key) is None
    True
    >>> cache.put(key, {"ok": True, "result": {"n": 5}})
    >>> cache.get(key)["result"]
    {'n': 5}
    >>> cache.evict_snapshot(1)
    >>> cache.get(key) is None
    True
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        snapshot_id: int, op: str, params: Dict[str, Any]
    ) -> Tuple:
        """The cache key for one request against one snapshot."""
        return (int(snapshot_id), op, canonical_params(params))

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """The memoised envelope (a shallow copy), or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._publish_locked()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._publish_locked()
            return dict(entry)

    def put(self, key: Tuple, envelope: Dict[str, Any]) -> None:
        """Memoise one answer envelope (evicts LRU past capacity)."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = dict(envelope)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def evict_snapshot(self, snapshot_id: int) -> None:
        """Drop every entry of a retired snapshot."""
        with self._lock:
            stale = [
                key for key in self._entries if key[0] == int(snapshot_id)
            ]
            for key in stale:
                del self._entries[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _publish_locked(self) -> None:
        total = self.hits + self.misses
        if total:
            global_metrics().gauge("cache.hit_ratio", extent="serve").set(
                self.hits / total
            )
