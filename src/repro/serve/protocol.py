"""Wire protocol of the query service: newline-delimited JSON.

One request per line, one response line per request, in order. A request
is a JSON object with an ``op`` field plus that operation's parameters;
an optional ``id`` (any JSON scalar) is echoed back so pipelining clients
can match answers. Responses are *envelopes*::

    {"id": ..., "ok": true,  "op": "membership",
     "result": {...},
     "snapshot": {"id": 3, "wal_seq": 17},
     "io": {"read_ios": 2, "write_ios": 0, "bytes_read": 8192},
     "elapsed_ms": 0.41}

    {"id": ..., "ok": false,
     "error": {"type": "bad_request", "message": "..."}}

``snapshot`` names the pinned version the answer is exact for, and ``io``
is the request's charged-I/O bill (the Aggarwal–Vitter block counts the
whole repo accounts in — queries are billed per request, not per server).
Sharded answers replace ``snapshot`` with the set of per-shard snapshots
consulted and sum the bills.

Operations
----------
``membership``  u, v, k        — is edge (u, v) in the k-truss?
``trussness``   u, v           — trussness of edge (u, v) (null if absent)

``membership``, ``trussness`` and ``stats`` also accept
``precision: "approx" | "exact"`` (default ``exact``). Approx answers
come from per-snapshot sampled estimator state and carry
``{estimate, ci, confidence, samples}`` instead of a point value — the
sublinear tier for graphs whose full decomposition is too expensive to
consult per query.
``community``   q[, k, connectivity, include_edges]
                               — truss community containing vertex q
``hierarchy``   [k]            — trussness level profile, or one level's
                                 edge/community counts
``export``      [k]            — charged dump of (edges, trussness), the
                                 whole snapshot or one trussness level;
                                 the router's gather primitive
``stats``                      — snapshot metadata (n, m, k_max, ...)
``shutdown``                   — ask the server to drain and exit
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..errors import ServeError

#: op -> (required params, optional params with defaults)
OPERATIONS: Dict[str, Tuple[Tuple[str, ...], Dict[str, Any]]] = {
    "membership": (("u", "v", "k"), {"precision": "exact"}),
    "trussness": (("u", "v"), {"precision": "exact"}),
    "community": (
        ("q",),
        {"k": None, "connectivity": "vertex", "include_edges": False},
    ),
    "hierarchy": ((), {"k": None}),
    "export": ((), {"k": None}),
    "stats": ((), {"precision": "exact"}),
    "shutdown": ((), {}),
}

_INT_PARAMS = ("u", "v", "q", "k")

#: Answer tiers of the ``precision`` parameter: ``exact`` replays the
#: snapshot's decomposition; ``approx`` answers from sampled estimator
#: state with a confidence interval (sublinear charged I/O).
PRECISIONS = ("exact", "approx")

#: Maximum request line the server will parse (1 MiB is generous for a
#: protocol whose largest request is a handful of integers).
MAX_LINE_BYTES = 1 << 20


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line into a dict (bad input raises ServeError)."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        request = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ServeError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    return request


def validate_request(request: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Check *request* against :data:`OPERATIONS`; returns (op, params).

    Integer parameters are range-checked for type only — graph bounds are
    the engine's job (it knows the snapshot).
    """
    op = request.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        known = ", ".join(sorted(OPERATIONS))
        raise ServeError(f"unknown op {op!r}; known: {known}")
    required, optional = OPERATIONS[op]
    params: Dict[str, Any] = {}
    for name in required:
        if name not in request:
            raise ServeError(f"{op}: missing required parameter {name!r}")
        params[name] = request[name]
    for name, default in optional.items():
        params[name] = request.get(name, default)
    for name in _INT_PARAMS:
        if name in params and params[name] is not None:
            value = params[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ServeError(
                    f"{op}: parameter {name!r} must be an integer, "
                    f"got {value!r}"
                )
    if "precision" in params and params["precision"] not in PRECISIONS:
        raise ServeError(
            f"{op}: unknown precision {params['precision']!r}; "
            f"known: {', '.join(PRECISIONS)}"
        )
    if op == "membership" and params["k"] < 2:
        raise ServeError(f"membership: k must be >= 2, got {params['k']}")
    if op == "community":
        if params["connectivity"] not in ("vertex", "triangle"):
            raise ServeError(
                f"community: unknown connectivity {params['connectivity']!r}"
            )
        if params["k"] is not None and params["k"] < 2:
            raise ServeError(f"community: k must be >= 2, got {params['k']}")
        if not isinstance(params["include_edges"], bool):
            raise ServeError("community: include_edges must be a boolean")
    if op in ("hierarchy", "export") and (
        params["k"] is not None and params["k"] < 2
    ):
        raise ServeError(f"{op}: k must be >= 2, got {params['k']}")
    return op, params


def encode_envelope(envelope: Dict[str, Any]) -> bytes:
    """Serialise a response envelope as one ``\\n``-terminated line."""
    return json.dumps(envelope, separators=(",", ":")).encode() + b"\n"


def error_envelope(
    request_id: Any, error_type: str, message: str
) -> Dict[str, Any]:
    """The failure half of the protocol (``ok: false``)."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }


def ok_envelope(
    request_id: Any,
    op: str,
    result: Dict[str, Any],
    snapshot: Dict[str, Any],
    io: Dict[str, int],
    elapsed_ms: float,
) -> Dict[str, Any]:
    """The success half of the protocol (``ok: true``)."""
    return {
        "id": request_id,
        "ok": True,
        "op": op,
        "result": result,
        "snapshot": snapshot,
        "io": io,
        "elapsed_ms": round(elapsed_ms, 3),
    }


def request_id_of(request: Optional[Dict[str, Any]]) -> Any:
    """The echoable ``id`` of a request (None when absent/unusable)."""
    if not isinstance(request, dict):
        return None
    request_id = request.get("id")
    if isinstance(request_id, (str, int, float)) or request_id is None:
        return request_id
    return None
