"""Asyncio TCP front end of the query service (``repro serve``).

One connection carries any number of newline-delimited JSON requests;
responses come back in request order per connection. Query execution is
CPU-bound python, so each request is dispatched to the default thread
pool (`run_in_executor`) — the event loop stays free to accept and read
other connections, and the engine's per-request pin/context design makes
concurrent execution safe.

Lifecycle guarantees:

* **per-query timeout** (``serve_query_timeout``): a query past budget is
  answered with a ``timeout`` error envelope (its worker finishes in the
  background; the connection stays usable);
* **error envelopes**: malformed input and engine errors answer
  ``bad_request``, unexpected exceptions answer ``internal`` — a bad
  request never kills the connection, let alone the server;
* **graceful shutdown** (the ``shutdown`` op, or :meth:`TrussServer.stop`):
  the listener closes first, in-flight requests drain and answer, then
  connections close and :meth:`serve_forever` returns.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, Optional

from ..errors import ServeError
from ..observability.metrics import global_metrics
from .engine import QueryEngine
from .protocol import (
    decode_line,
    encode_envelope,
    error_envelope,
    request_id_of,
)


class TrussServer:
    """The asyncio TCP server wrapping a :class:`QueryEngine`-compatible
    executor (:class:`~repro.serve.router.ShardedRouter` fits too).

    Example
    -------
    ::

        server = TrussServer(engine, host="127.0.0.1", port=0)
        asyncio.run(server.serve_forever())   # until a shutdown request
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        query_timeout: Optional[float] = 30.0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.query_timeout = query_timeout
        self.address: Optional[tuple] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._inflight = 0
        self._drained: Optional[asyncio.Event] = None
        self.requests_served = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> tuple:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ServeError("server already started")
        self._shutdown = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) drains us."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
            # Stop accepting, then let in-flight work answer before the
            # connections go away.
            self._server.close()
            await self._server.wait_closed()
            await self._drained.wait()
        self._server = None

    def stop(self) -> None:
        """Trigger the graceful-shutdown sequence from outside."""
        if self._shutdown is not None:
            self._shutdown.set()

    @property
    def stopping(self) -> bool:
        return self._shutdown is not None and self._shutdown.is_set()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    def _track(self, delta: int) -> None:
        self._inflight += delta
        if self._inflight == 0:
            self._drained.set()
        else:
            self._drained.clear()
        global_metrics().gauge("serve.inflight").set(self._inflight)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self.stopping:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._track(+1)
                try:
                    envelope = await self._answer(line)
                finally:
                    self._track(-1)
                writer.write(encode_envelope(envelope))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _answer(self, line: bytes) -> Dict[str, Any]:
        request: Optional[Dict[str, Any]] = None
        try:
            request = decode_line(line)
            if request.get("op") == "shutdown":
                self.stop()
                return {
                    "id": request_id_of(request),
                    "ok": True,
                    "op": "shutdown",
                    "result": {"draining": True},
                }
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(None, self.engine.execute, request)
            envelope = await asyncio.wait_for(future, self.query_timeout)
            self.requests_served += 1
            return envelope
        except asyncio.TimeoutError:
            global_metrics().counter("serve.errors", type="timeout").inc()
            return error_envelope(
                request_id_of(request), "timeout",
                f"query exceeded {self.query_timeout}s",
            )
        except ServeError as exc:
            global_metrics().counter("serve.errors", type="bad_request").inc()
            return error_envelope(request_id_of(request), "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - a query must never kill the server
            global_metrics().counter("serve.errors", type="internal").inc()
            return error_envelope(
                request_id_of(request), "internal",
                f"{type(exc).__name__}: {exc}",
            )


def run_server(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    query_timeout: Optional[float] = 30.0,
    on_started=None,
) -> TrussServer:
    """Blocking convenience: start, announce, serve until shutdown.

    *on_started* is called with the bound ``(host, port)`` once the
    listener is up (the CLI prints it; tests grab the ephemeral port).
    """
    server = TrussServer(
        engine, host=host, port=port, query_timeout=query_timeout
    )

    async def _main() -> None:
        address = await server.start()
        if on_started is not None:
            on_started(address)
        await server.serve_forever()

    asyncio.run(_main())
    return server
