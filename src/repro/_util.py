"""Small shared helpers: work budgets and timing."""

from __future__ import annotations

import math
import time
from typing import Optional

from .errors import WorkLimitExceeded


class WorkBudget:
    """A cap on abstract work units, emulating the paper's "INF" timeouts.

    The paper reports algorithms that run past 48 hours as ``INF``. At
    reproduction scale we bound *work* instead of wall-clock (deterministic
    and fast): algorithms spend one unit per edge-peel kernel invocation and
    raise :class:`WorkLimitExceeded` past the limit. A ``limit`` of ``None``
    means unbounded.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("work limit must be positive or None")
        self.limit = limit
        self.spent = 0

    def spend(self, amount: int = 1) -> None:
        """Consume *amount* units; raises once the limit is exceeded."""
        self.spent += amount
        if self.limit is not None and self.spent > self.limit:
            raise WorkLimitExceeded(self.limit)

    @property
    def exhausted(self) -> bool:
        """Whether the budget has been exceeded."""
        return self.limit is not None and self.spent > self.limit


class Stopwatch:
    """Tiny elapsed-time helper (perf_counter based)."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start


def ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling of ``numerator / denominator`` for positive denominators."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -((-numerator) // denominator)


def ceil_ratio_plus(numerator: int, denominator: int, offset: int) -> int:
    """``ceil(numerator / denominator) + offset`` with integer arithmetic."""
    return ceil_div(numerator, denominator) + offset


def is_power_of_two(value: int) -> bool:
    """Whether *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_ceil(value: int) -> int:
    """``ceil(log2(value))`` for positive integers."""
    if value <= 0:
        raise ValueError("value must be positive")
    return int(math.ceil(math.log2(value))) if value > 1 else 0
