"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type to handle any library failure while still letting programming
errors (``TypeError``, ``ValueError`` from numpy, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge-list file or binary graph image could not be parsed."""


class GraphFileError(GraphFormatError):
    """A graph image file could not be opened, mapped, or validated.

    Raised by the mmap-validated ``.rgr`` load path
    (:func:`repro.persistence.read_rgr_mapped`): the checksum and
    structural validation run *before* any mapped view is trusted, and
    the mapping is released before this error propagates so the caller
    can unlink the file. Subclasses :class:`GraphFormatError` so callers
    catching the format error handle the mapped path identically.
    """


class DeviceError(ReproError):
    """Invalid operation on a :class:`repro.storage.BlockDevice`."""


class ArrayBoundsError(DeviceError, IndexError):
    """A :class:`repro.storage.DiskArray` access fell outside the array."""


class HeapError(ReproError):
    """Invalid operation on a heap structure (linear-heap / dynamic-heap)."""


class HeapEmptyError(HeapError):
    """``pop``/``top`` on an empty heap."""


class CapacityError(HeapError):
    """A memory-capacity constraint of a structure was violated."""


class NotComputedError(ReproError):
    """A result attribute was read before the producing phase ran."""


class WorkLimitExceeded(ReproError):
    """An algorithm exceeded its configured work cap.

    Benchmarks use this to emulate the paper's 48-hour "INF" timeouts at
    reproduction scale: an algorithm that blows past its operation budget is
    reported as ``INF`` instead of stalling the harness.
    """

    def __init__(self, limit: int, message: str = "") -> None:
        super().__init__(message or f"work limit of {limit} operations exceeded")
        self.limit = limit


class UnknownDatasetError(ReproError, KeyError):
    """A dataset name was not found in the stand-in registry."""


class UnknownMethodError(ReproError, KeyError):
    """An algorithm name passed to a dispatch facade was not recognised."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed as length-framed JSONL records."""


class IngestError(ReproError):
    """Invalid operation on an :class:`repro.dynamic.ingest.IngestPipeline`
    (submit after close, misuse of window mode, consumer failure)."""


class ServeError(ReproError):
    """A query-service request could not be answered (bad request, unknown
    operation, query timeout, server shutting down)."""


class PartitionError(ReproError):
    """A partition manifest or shard image is invalid or inconsistent."""
