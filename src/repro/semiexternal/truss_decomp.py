"""Semi-external truss decomposition by local h-index iteration.

The peeling decomposition (:func:`repro.baselines.bottom_up.bottom_up`)
processes edges globally in support order — inherently sequential and
random-access. The *local* alternative, which the paper's Top-Down baseline
uses for upper bounds (and which Sariyuce et al. developed as a standalone
algorithm), iterates a per-edge h-index to a fixpoint:

    ``t(e) <- h-index over triangles (e, f, g) of min(t(f), t(g))``

starting from ``t(e) = sup(e)``. Each iterate stays an upper bound on
``τ(e) − 2`` and the sequence converges to it exactly. Every round is one
sequential pass over the adjacency file — friendly to the I/O model — and
the number of rounds is typically small.

This module exposes the converged algorithm as a second, independent
semi-external decomposition; tests cross-check it against peeling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._util import WorkBudget
from ..engine.context import ContextLike, resolve_context
from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph
from ..storage import BlockDevice, DiskArray
from .core_decomp import h_index
from .support import compute_supports


@dataclass
class HIndexDecomposition:
    """Result of the h-index truss decomposition."""

    trussness: np.ndarray  # per-edge τ(e), edge-id indexed
    rounds: int
    k_max: int


def _edge_round(
    disk_graph: DiskGraph,
    values: DiskArray,
    marker: np.ndarray,
    marker_eid: np.ndarray,
    budget: Optional[WorkBudget],
) -> bool:
    """One full pass updating every edge's h-index estimate.

    Returns whether any estimate decreased.
    """
    changed = False
    for u in range(disk_graph.n):
        if disk_graph.degree(u) == 0:
            continue
        nbrs, eids = disk_graph.load_neighbors_with_eids(u)
        marker[nbrs] = u
        marker_eid[nbrs] = eids
        for position in range(len(nbrs)):
            v = int(nbrs[position])
            if v <= u:
                continue
            if budget is not None:
                budget.spend()
            uv_eid = int(eids[position])
            v_nbrs, v_eids = disk_graph.load_neighbors_with_eids(v)
            hits = marker[v_nbrs] == u
            if not hits.any():
                if values.get(uv_eid) != 0:
                    values.set(uv_eid, 0)
                    changed = True
                continue
            partner = np.minimum(
                values.gather(marker_eid[v_nbrs[hits]]),
                values.gather(v_eids[hits]),
            )
            candidate = h_index(partner)
            if candidate < values.get(uv_eid):
                values.set(uv_eid, candidate)
                changed = True
    return changed


def h_index_truss_decomposition(
    graph: Graph,
    device: Optional[BlockDevice] = None,
    budget: Optional[WorkBudget] = None,
    max_rounds: Optional[int] = None,
    context: Optional[ContextLike] = None,
) -> HIndexDecomposition:
    """Exact trussness of every edge via h-index convergence.

    Parameters
    ----------
    graph:
        Input graph (materialised onto the context's device).
    device:
        Deprecated shim: a caller-built simulated disk. Prefer *context*.
    budget:
        Optional work cap (one unit per edge visit per round).
    max_rounds:
        Optional early stop for bound-only use (Top-Down uses 2 rounds);
        the returned values are then still sound *upper bounds* on τ.
    """
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    memory = ctx.memory
    budget = ctx.new_budget(budget)
    disk_graph = DiskGraph(graph, device, memory, name="G")
    if graph.m == 0:
        return HIndexDecomposition(np.zeros(0, dtype=np.int64), 0, 0)
    scan = compute_supports(disk_graph)
    values = scan.supports  # iterate in place: starts at sup(e) = ub on τ-2
    marker = np.full(graph.n, -1, dtype=np.int64)
    marker_eid = np.zeros(graph.n, dtype=np.int64)
    memory.charge("hindex.markers", marker.nbytes + marker_eid.nbytes)
    rounds = 0
    while True:
        rounds += 1
        changed = _edge_round(disk_graph, values, marker, marker_eid, budget)
        if not changed:
            break
        if max_rounds is not None and rounds >= max_rounds:
            break
    trussness = values.to_numpy() + 2
    memory.release("hindex.markers")
    values.free()
    disk_graph.release()
    k_max = int(trussness.max()) if len(trussness) else 0
    return HIndexDecomposition(trussness, rounds, k_max)
