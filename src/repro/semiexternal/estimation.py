"""Sampling estimators for triangle statistics and ``k_max`` bounds.

At the paper's true scale even one exact support scan is a major I/O
investment. Before committing to it, cheap sampled estimates answer
planning questions: roughly how many triangles (how expensive will the scan
be), and roughly where will the binary search start (a probabilistic
Lemma 1 seed). The classic tool is **wedge sampling** (Seshadhri et al.):
sample two-paths uniformly, measure how often they close into a triangle.

Estimators are semi-external: they read ``O(samples)`` adjacency lists
through the charged access path and keep only ``O(n)`` state.

Randomness is always an explicit :class:`numpy.random.Generator`: pass
*rng* to share a stream across estimators, or *seed* to derive one; with
neither, the seed comes from the context's
:attr:`~repro.engine.EngineConfig.approx_seed` — estimator runs are
replayable by default, never wall-clock seeded. (The confidence-bounded
successors of these planning estimators live in :mod:`repro.approx`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._util import ceil_div
from ..engine.context import ContextLike, resolve_context
from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph
from ..storage import BlockDevice


def _resolve_rng(
    rng: Optional[np.random.Generator],
    seed: Optional[int],
    ctx,
) -> np.random.Generator:
    """One explicit Generator: *rng* wins, then *seed*, then the config's
    ``approx_seed`` (so an unseeded call is still deterministic)."""
    if rng is not None:
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    return np.random.default_rng(ctx.config.approx_seed)


@dataclass
class TriangleEstimate:
    """A wedge-sampling estimate of the triangle count.

    Attributes
    ----------
    triangles:
        Point estimate of ``Δ_G``.
    closure_rate:
        Fraction of sampled wedges that closed.
    wedges:
        Total number of wedges in the graph (exact, from degrees).
    samples:
        Wedges sampled.
    """

    triangles: float
    closure_rate: float
    wedges: int
    samples: int

    def lemma1_seed(self, num_edges: int) -> int:
        """A probabilistic Lemma 1 lower-bound seed from the estimate.

        Because the estimate is noisy, callers must treat this like the
        exact Lemma 1 value: a search seed backed by verification, never a
        correctness assumption.
        """
        if num_edges <= 0 or self.triangles <= 0:
            return 2
        return ceil_div(int(3 * self.triangles), num_edges) + 2


def estimate_triangles(
    graph: Graph,
    samples: int = 2000,
    seed: Optional[int] = None,
    device: Optional[BlockDevice] = None,
    context: Optional[ContextLike] = None,
    rng: Optional[np.random.Generator] = None,
) -> TriangleEstimate:
    """Estimate ``Δ_G`` by uniform wedge sampling (charged I/O).

    ``Δ_G = closure_rate * wedges / 3`` since every triangle contains
    exactly three wedges. Exact for graphs with no wedges (returns 0).
    *rng* (or *seed*, or the config's ``approx_seed``) fixes the sample.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    disk_graph = DiskGraph(graph, device, ctx.memory, name="est.G")
    degrees = graph.degrees.astype(np.int64)
    wedge_counts = degrees * (degrees - 1) // 2
    total_wedges = int(wedge_counts.sum())
    if total_wedges == 0:
        disk_graph.release()
        return TriangleEstimate(0.0, 0.0, 0, samples)
    rng = _resolve_rng(rng, seed, ctx)
    probabilities = wedge_counts / total_wedges
    centers = rng.choice(graph.n, size=samples, p=probabilities)
    closed = 0
    for center in centers:
        nbrs = disk_graph.load_neighbors(int(center))
        first, second = rng.choice(len(nbrs), size=2, replace=False)
        a, b = int(nbrs[first]), int(nbrs[second])
        # Membership probe against the smaller endpoint's list.
        probe = a if graph.degree(a) <= graph.degree(b) else b
        other = b if probe == a else a
        probe_nbrs = disk_graph.load_neighbors(probe)
        position = np.searchsorted(probe_nbrs, other)
        if position < len(probe_nbrs) and probe_nbrs[position] == other:
            closed += 1
    disk_graph.release()
    rate = closed / samples
    return TriangleEstimate(rate * total_wedges / 3.0, rate, total_wedges, samples)


def estimate_max_support(
    graph: Graph,
    samples: int = 500,
    seed: Optional[int] = None,
    device: Optional[BlockDevice] = None,
    context: Optional[ContextLike] = None,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """A sampled *lower* bound on ``max_e sup(e)`` (charged I/O).

    Samples edges biased toward high-degree endpoints (where the maximum
    support lives) and measures their exact support. The true maximum is
    at least the returned value; it seeds progress displays and sanity
    checks, not correctness decisions (Lemma 2 needs the exact maximum).
    *rng* (or *seed*, or the config's ``approx_seed``) fixes the sample.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if graph.m == 0:
        return 0
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    disk_graph = DiskGraph(graph, device, ctx.memory, name="est.G")
    rng = _resolve_rng(rng, seed, ctx)
    degrees = graph.degrees.astype(np.float64)
    edge_weights = degrees[graph.edges[:, 0]] + degrees[graph.edges[:, 1]]
    probabilities = edge_weights / edge_weights.sum()
    chosen = rng.choice(graph.m, size=min(samples, graph.m), replace=False,
                        p=probabilities)
    best = 0
    for eid in chosen:
        u, v = int(graph.edges[eid, 0]), int(graph.edges[eid, 1])
        nbrs_u = disk_graph.load_neighbors(u)
        nbrs_v = disk_graph.load_neighbors(v)
        support = len(np.intersect1d(nbrs_u, nbrs_v, assume_unique=True))
        best = max(best, support)
    disk_graph.release()
    return best
