"""Core decomposition: in-memory peeling and the semi-external iteration.

SemiGreedyCore (Alg 2 line 1) and the maintenance algorithms rely on
coreness values. The semi-external computation follows Wen et al. (ICDE'16),
as cited by the paper: start from ``core(v) = d(v)`` and repeatedly lower
each vertex to the *h-index* of its neighbours' current values, scanning the
adjacency file once per round, until a fixpoint. Memory is ``O(n)``; I/O is
``O(l · (n + m) / B)`` for ``l`` convergence rounds (the paper's Theorem 2).

The in-memory bucket-peeling variant (Batagelj–Zaversnik) is the ground
truth used in tests and by the purely in-memory baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph


def h_index(values: np.ndarray) -> int:
    """Largest ``h`` such that at least ``h`` of *values* are ``>= h``."""
    if len(values) == 0:
        return 0
    ordered = np.sort(values)[::-1]
    ranks = np.arange(1, len(ordered) + 1)
    qualifying = ordered >= ranks
    return int(ranks[qualifying][-1]) if qualifying.any() else 0


def core_decomposition_inmemory(graph: Graph) -> np.ndarray:
    """Exact coreness of every vertex by bucket peeling (O(n + m))."""
    n = graph.n
    degrees = graph.degrees.copy()
    coreness = np.zeros(n, dtype=np.int64)
    if n == 0:
        return coreness
    max_degree = int(degrees.max()) if n else 0
    # Bucket sort vertices by degree.
    bins = np.zeros(max_degree + 2, dtype=np.int64)
    for d in degrees:
        bins[d] += 1
    starts = np.zeros(max_degree + 2, dtype=np.int64)
    np.cumsum(bins[:-1], out=starts[1:])
    position = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    cursor = starts.copy()
    for v in range(n):
        position[v] = cursor[degrees[v]]
        order[position[v]] = v
        cursor[degrees[v]] += 1
    bucket_start = starts
    current = degrees.copy()
    for index in range(n):
        v = order[index]
        coreness[v] = current[v]
        for u in graph.neighbors(int(v)):
            u = int(u)
            if current[u] > current[v]:
                # Move u one bucket down: swap it to the front of its bucket.
                du = current[u]
                front = bucket_start[du]
                front_vertex = order[front]
                if front_vertex != u:
                    order[front], order[position[u]] = u, front_vertex
                    position[front_vertex], position[u] = position[u], front
                bucket_start[du] += 1
                current[u] -= 1
    return coreness


@dataclass
class CoreDecompositionResult:
    """Semi-external coreness plus its convergence statistics."""

    coreness: np.ndarray
    rounds: int

    @property
    def c_max(self) -> int:
        """Maximum coreness (the degeneracy ``c_max``)."""
        return int(self.coreness.max()) if len(self.coreness) else 0


def semi_external_core_decomposition(
    disk_graph: DiskGraph, max_rounds: int = None
) -> CoreDecompositionResult:
    """Iterative-h-index coreness over a :class:`DiskGraph` (charged I/O).

    Converges to the exact coreness; each round is one sequential pass over
    the adjacency file.
    """
    n = disk_graph.n
    memory_tag = "coredecomp.core"
    disk_graph.memory.charge(memory_tag, 8 * n)
    coreness = disk_graph.degrees.astype(np.int64).copy()
    rounds = 0
    try:
        while True:
            changed = False
            for v in range(n):
                if disk_graph.degree(v) == 0:
                    continue
                nbrs = disk_graph.load_neighbors(v)
                candidate = h_index(coreness[nbrs])
                if candidate < coreness[v]:
                    coreness[v] = candidate
                    changed = True
            rounds += 1
            if not changed:
                break
            if max_rounds is not None and rounds >= max_rounds:
                break
    finally:
        disk_graph.memory.release(memory_tag)
    return CoreDecompositionResult(coreness, rounds)


def max_core_subgraph(graph: Graph) -> np.ndarray:
    """Vertex ids of the maximum-coreness core ``V_cmax`` (Alg 2 line 2)."""
    coreness = core_decomposition_inmemory(graph)
    if len(coreness) == 0:
        return np.empty(0, dtype=np.int64)
    return np.nonzero(coreness == coreness.max())[0].astype(np.int64)
