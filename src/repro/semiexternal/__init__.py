"""Semi-external primitives: support scans, triangles, core decomposition."""

from .support import SupportScan, compute_supports, support_histogram, prefix_positions
from .triangles import (
    triangle_count,
    enumerate_triangles,
    edge_triangle_supports_naive,
    local_clustering,
    global_clustering,
)
from .truss_decomp import HIndexDecomposition, h_index_truss_decomposition
from .estimation import TriangleEstimate, estimate_triangles, estimate_max_support
from .orientation import compute_supports_oriented
from .wcc import ComponentResult, semi_external_components, split_edges_semi_external
from .core_decomp import (
    CoreDecompositionResult,
    core_decomposition_inmemory,
    semi_external_core_decomposition,
    max_core_subgraph,
    h_index,
)

__all__ = [
    "SupportScan",
    "compute_supports",
    "support_histogram",
    "prefix_positions",
    "triangle_count",
    "enumerate_triangles",
    "edge_triangle_supports_naive",
    "local_clustering",
    "global_clustering",
    "CoreDecompositionResult",
    "core_decomposition_inmemory",
    "semi_external_core_decomposition",
    "max_core_subgraph",
    "h_index",
    "HIndexDecomposition",
    "h_index_truss_decomposition",
    "TriangleEstimate",
    "estimate_triangles",
    "estimate_max_support",
    "compute_supports_oriented",
    "ComponentResult",
    "semi_external_components",
    "split_edges_semi_external",
]
