"""Semi-external per-edge support computation (Alg 1 line 1, Alg 2 line 4).

Follows the node-at-a-time scan of Menegola's external triangle-listing
method, as cited by the paper: for each vertex ``u`` in increasing id order,
load ``N(u)`` once, mark it in an ``O(n)`` in-memory marker array, then for
every neighbour ``v > u`` load ``N(v)`` and count marked vertices — that
count is exactly ``sup((u, v)) = |N(u) ∩ N(v)|``.

Because the edge table is sorted lexicographically, the edges ``(u, v)`` with
``v > u`` for a fixed ``u`` occupy a contiguous edge-id range, so support
values stream to disk almost sequentially. Total I/O is the paper's
``O(|E| · d_max / B)``.

The scan's by-products feed the Lemma 1 bounds: the global triangle count,
the number of zero-support edges, and the maximum support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.disk_graph import DiskGraph
from ..observability.tracer import trace_span
from ..storage import DiskArray


@dataclass
class SupportScan:
    """Result of a semi-external support scan.

    Attributes
    ----------
    supports:
        ``DiskArray`` of per-edge support, indexed by edge id.
    triangle_count:
        ``Δ_G`` — total distinct triangles.
    zero_support_edges:
        ``|E⁰_sup(G)|`` — edges in no triangle.
    max_support:
        Maximum support over all edges (0 for triangle-free graphs).
    """

    supports: DiskArray
    triangle_count: int
    zero_support_edges: int
    max_support: int


def compute_supports(disk_graph: DiskGraph, name: str = "sup") -> SupportScan:
    """Compute the support of every edge of *disk_graph* semi-externally.

    Memory use is ``O(n)`` (one marker array); every adjacency load and every
    support write is charged to the graph's block device.

    When an ambient parallel executor is active (the enclosing
    ``ExecutionContext.parallel_kernels()`` scope, ``workers > 1``) and the
    scan crosses ``parallel_threshold``, the values are computed by the
    sharded worker kernels instead — same result, and the bill stays
    bit-identical because the parent replays this function's exact access
    sequence through the same device (``repro.parallel.scan``).
    """
    from ..parallel.executor import active_executor

    executor = active_executor()
    if executor is not None and executor.wants_scan(disk_graph.n, disk_graph.m):
        from ..parallel.scan import parallel_compute_supports

        return parallel_compute_supports(disk_graph, executor, name=name)
    with trace_span("support_scan", kind="kernel",
                    n=disk_graph.n, m=disk_graph.m, array=name):
        return _compute_supports_impl(disk_graph, name)


def _compute_supports_impl(disk_graph: DiskGraph, name: str) -> SupportScan:
    n, m = disk_graph.n, disk_graph.m
    supports = DiskArray(disk_graph.device, m, np.int64, name=name)
    memory_tag = f"{name}.marker"
    disk_graph.memory.charge(memory_tag, 8 * n)
    marker = np.full(n, -1, dtype=np.int64)
    support_sum = 0
    zero_edges = 0
    max_support = 0
    try:
        for u in range(n):
            if disk_graph.degree(u) == 0:
                continue
            nbrs, eids = disk_graph.load_neighbors_with_eids(u)
            marker[nbrs] = u
            forward = nbrs > u
            if not forward.any():
                continue
            forward_nbrs = nbrs[forward]
            forward_eids = eids[forward]
            # One batched adjacency fetch for all forward neighbours (same
            # edge-file touches as the per-vertex loop), then a vectorized
            # marker intersection: segment i of the concatenation is N(v_i),
            # and sup((u, v_i)) = |{w in N(v_i) : marker[w] == u}|. Every
            # v_i has degree >= 1 (it neighbours u), so the reduceat
            # segments are all non-empty.
            cat, bounds = disk_graph.load_neighbors_batch(forward_nbrs)
            values = np.add.reduceat(marker[cat] == u, bounds[:-1], dtype=np.int64)
            supports.scatter(forward_eids, values)
            support_sum += int(values.sum())
            zero_edges += int(np.count_nonzero(values == 0))
            if len(values):
                max_support = max(max_support, int(values.max()))
    finally:
        disk_graph.memory.release(memory_tag)
    # Each triangle contributes 1 to the support of each of its 3 edges.
    triangle_count = support_sum // 3
    return SupportScan(supports, triangle_count, zero_edges, max_support)


def compute_supports_reference(disk_graph: DiskGraph, name: str = "sup") -> SupportScan:
    """Scalar reference implementation of :func:`compute_supports`.

    Walks the identical access sequence — ``N(u)``, then ``N(v)`` per
    forward neighbour, then one support write per forward edge — but one
    access at a time through the device's scalar touch path, exactly as the
    support scan did before the batched fast path existed. It backs the
    I/O-count-equivalence guard (both functions must produce identical
    ``IOStats`` and per-extent counters on equally configured devices) and
    the perf-regression benchmark's baseline timing. Algorithm code should
    always call :func:`compute_supports`.
    """
    n, m = disk_graph.n, disk_graph.m
    supports = DiskArray(disk_graph.device, m, np.int64, name=name)
    memory_tag = f"{name}.marker"
    disk_graph.memory.charge(memory_tag, 8 * n)
    marker = np.full(n, -1, dtype=np.int64)
    support_sum = 0
    zero_edges = 0
    max_support = 0
    try:
        for u in range(n):
            if disk_graph.degree(u) == 0:
                continue
            nbrs, eids = disk_graph.load_neighbors_with_eids(u)
            marker[nbrs] = u
            forward = nbrs > u
            if not forward.any():
                continue
            forward_nbrs = nbrs[forward]
            forward_eids = eids[forward]
            values = np.empty(len(forward_nbrs), dtype=np.int64)
            for index, v in enumerate(forward_nbrs.tolist()):
                v_nbrs = disk_graph.load_neighbors(v)
                values[index] = np.count_nonzero(marker[v_nbrs] == u)
            for eid, value in zip(forward_eids.tolist(), values.tolist()):
                supports.set(eid, value)
            support_sum += int(values.sum())
            zero_edges += int(np.count_nonzero(values == 0))
            if len(values):
                max_support = max(max_support, int(values.max()))
    finally:
        disk_graph.memory.release(memory_tag)
    triangle_count = support_sum // 3
    return SupportScan(supports, triangle_count, zero_edges, max_support)


def support_histogram(scan: SupportScan, upper: int) -> np.ndarray:
    """Histogram ``cnt[i] = |E^i_sup|`` for ``0 <= i <= upper`` (sequential
    read of the support file) — the ``ComputePrefix`` helper of Alg 1."""
    counts = np.zeros(upper + 1, dtype=np.int64)
    # Chunk on block boundaries so no block straddles two chunks: a
    # straddled block would be touched twice and, under a tiny buffer pool,
    # charged twice — keeping chunks block-aligned keeps the histogram's
    # I/O exactly ceil(m * itemsize / B) for any block size.
    supports = scan.supports
    per_block = max(1, supports.device.block_size // supports.itemsize)
    batch = max(per_block, (8192 // per_block) * per_block)
    for start in range(0, len(scan.supports), batch):
        stop = min(start + batch, len(scan.supports))
        chunk = scan.supports.read_slice(start, stop)
        clipped = np.minimum(chunk, upper)
        np.add.at(counts, clipped, 1)
    return counts


def prefix_positions(counts: np.ndarray) -> np.ndarray:
    """``pre(i)`` — starting position of support-``i`` edges in the sorted
    edge file ``T_edge`` (Alg 1 lines 28–31)."""
    prefix = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=prefix[1:])
    return prefix
