"""Semi-external connected components (label propagation).

Definition 2 makes every k-truss *connected*, so splitting a class into its
components is part of answering queries. In memory that's a union-find
(:mod:`repro.analysis.components`); under the semi-external model it is the
classic label-propagation scan: keep one ``O(n)`` label array in memory,
sweep the edge file, lower each endpoint's label to the minimum of the two,
repeat until a fixpoint. Rounds are bounded by the graph diameter; each
round is one sequential pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.context import ContextLike, resolve_context
from ..graph.disk_graph import DiskGraph
from ..graph.memgraph import Graph
from ..storage import BlockDevice, MemoryMeter

EdgePair = Tuple[int, int]


@dataclass
class ComponentResult:
    """Output of a semi-external components run."""

    labels: np.ndarray  # per-vertex component label (min vertex id inside)
    rounds: int

    @property
    def component_count(self) -> int:
        """Number of components among non-isolated... all vertices."""
        return len(np.unique(self.labels)) if len(self.labels) else 0

    def component_of(self, v: int) -> int:
        """Label of vertex *v*."""
        return int(self.labels[v])

    def members(self) -> Dict[int, List[int]]:
        """``label -> sorted member vertices``."""
        groups: Dict[int, List[int]] = {}
        for v, label in enumerate(self.labels):
            groups.setdefault(int(label), []).append(v)
        return groups


def semi_external_components(
    graph: Graph,
    device: Optional[BlockDevice] = None,
    memory: Optional[MemoryMeter] = None,
    context: Optional[ContextLike] = None,
) -> ComponentResult:
    """Connected components with ``O(n)`` memory and sequential edge scans.

    Isolated vertices keep their own label. Charged against the context's
    device (or the deprecated *device* shim).
    """
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    if memory is None:
        memory = ctx.memory
    disk_graph = DiskGraph(graph, device, memory, name="wcc.G")
    labels = np.arange(graph.n, dtype=np.int64)
    memory.charge("wcc.labels", labels.nbytes)
    rounds = 0
    try:
        changed = graph.m > 0
        while changed:
            changed = False
            rounds += 1
            for _start, block in disk_graph.scan_edges():
                for u, v in block:
                    # Labels only ever decrease (towards the component's
                    # minimum vertex id), which guarantees termination.
                    label = min(labels[u], labels[v])
                    if labels[u] > label:
                        labels[u] = label
                        changed = True
                    if labels[v] > label:
                        labels[v] = label
                        changed = True
    finally:
        memory.release("wcc.labels")
        disk_graph.release()
    return ComponentResult(labels, rounds)


def split_edges_semi_external(
    graph: Graph,
    device: Optional[BlockDevice] = None,
    context: Optional[ContextLike] = None,
) -> List[List[EdgePair]]:
    """Partition the edge set by component (largest first), charged I/O.

    The semi-external analogue of
    :func:`repro.analysis.components.vertex_connected_components` —
    cross-checked against it in tests.
    """
    result = semi_external_components(graph, device=device, context=context)
    buckets: Dict[int, List[EdgePair]] = {}
    for u, v in graph.edge_pairs():
        buckets.setdefault(result.component_of(u), []).append((u, v))
    return sorted(
        (sorted(edges) for edges in buckets.values()),
        key=lambda component: (-len(component), component),
    )
