"""Degeneracy-oriented triangle counting: the ``O(m·α)`` support scan.

The node-at-a-time scan of :mod:`repro.semiexternal.support` costs
``O(Σ_(u,v) min(d(u), d(v)))`` — fine on bounded-degree graphs, painful on
heavy-tailed ones where two hubs share an edge. The classic fix orients
every edge from lower to higher *degeneracy order* position: each vertex
then has at most ``c_max`` out-neighbours (the arboricity bound), and
enumerating triangles as ``u → v``, ``u → w``, ``v → w`` touches each
triangle exactly once with out-lists of size ``<= c_max``.

One honesty caveat: the oriented enumeration updates the three edges of
each triangle in scattered order, so this backend accumulates supports in
an **O(m) in-memory buffer** (charged to the memory meter) and flushes it
once — it trades the semi-external memory bound for ``O(m·α)`` work, the
right choice whenever an edge-indexed array fits (it is how the paper's
in-memory comparators count support). The strict ``O(n)``-memory scan
remains :func:`repro.semiexternal.support.compute_supports`; both produce
the identical :class:`~repro.semiexternal.support.SupportScan` contract
and are cross-checked in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.degeneracy import degeneracy_ordering
from ..engine.context import ContextLike, resolve_context
from ..graph.memgraph import Graph
from ..storage import BlockDevice, DiskArray, MemoryMeter
from .support import SupportScan


def _oriented_adjacency(graph: Graph, position: np.ndarray):
    """CSR of out-neighbours (by degeneracy order) with aligned edge ids."""
    out_degree = np.zeros(graph.n, dtype=np.int64)
    source = np.where(
        position[graph.edges[:, 0]] < position[graph.edges[:, 1]],
        graph.edges[:, 0],
        graph.edges[:, 1],
    )
    np.add.at(out_degree, source, 1)
    offsets = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(out_degree, out=offsets[1:])
    heads = np.zeros(graph.m, dtype=np.int64)
    eids = np.zeros(graph.m, dtype=np.int64)
    cursor = offsets[:-1].copy()
    for eid in range(graph.m):
        u, v = graph.edges[eid]
        u, v = int(u), int(v)
        if position[u] > position[v]:
            u, v = v, u
        heads[cursor[u]] = v
        eids[cursor[u]] = eid
        cursor[u] += 1
    # Sort each out-list by target position for merge-style intersection.
    for v in range(graph.n):
        start, stop = offsets[v], offsets[v + 1]
        if stop - start > 1:
            order = np.argsort(position[heads[start:stop]], kind="mergesort")
            heads[start:stop] = heads[start:stop][order]
            eids[start:stop] = eids[start:stop][order]
    return offsets, heads, eids


def compute_supports_oriented(
    graph: Graph,
    device: Optional[BlockDevice] = None,
    memory: Optional[MemoryMeter] = None,
    name: str = "osup",
    context: Optional[ContextLike] = None,
) -> SupportScan:
    """Per-edge supports via degeneracy-oriented triangle enumeration.

    Returns the same :class:`SupportScan` contract as
    :func:`repro.semiexternal.support.compute_supports`; the supports
    array lives on the context's device (the deprecated *device* shim is
    still accepted). Uses an O(m) in-memory accumulator (see module
    docstring) — charged to *memory* (default: the context's meter).
    """
    ctx = resolve_context(context, device)
    device = ctx.device_for(graph.n)
    if memory is None:
        memory = ctx.memory
    supports_file = DiskArray(device, graph.m, np.int64, name=name, fill=0)
    if graph.m == 0:
        return SupportScan(supports_file, 0, 0, 0)
    order = degeneracy_ordering(graph)
    position = np.zeros(graph.n, dtype=np.int64)
    position[order] = np.arange(graph.n)
    memory.charge(f"{name}.order", position.nbytes)
    offsets, heads, eids = _oriented_adjacency(graph, position)
    # Oriented adjacency is itself an on-disk file: materialise + charge.
    heads_file = DiskArray.from_numpy(device, heads, name=f"{name}.oadj")
    eids_file = DiskArray.from_numpy(device, eids, name=f"{name}.oeids")

    supports = np.zeros(graph.m, dtype=np.int64)  # accumulate, flush once
    memory.charge(f"{name}.accumulator", supports.nbytes)
    memory_tag = f"{name}.marker"
    memory.charge(memory_tag, 16 * graph.n)
    marker = np.full(graph.n, -1, dtype=np.int64)
    marker_eid = np.zeros(graph.n, dtype=np.int64)
    for u in range(graph.n):
        start, stop = int(offsets[u]), int(offsets[u + 1])
        if stop - start < 2:
            continue
        out_nbrs = heads_file.read_slice(start, stop)
        out_eids = eids_file.read_slice(start, stop)
        marker[out_nbrs] = u
        marker_eid[out_nbrs] = out_eids
        for index in range(len(out_nbrs)):
            v = int(out_nbrs[index])
            v_start, v_stop = int(offsets[v]), int(offsets[v + 1])
            if v_stop == v_start:
                continue
            v_nbrs = heads_file.read_slice(v_start, v_stop)
            v_eids = eids_file.read_slice(v_start, v_stop)
            hits = marker[v_nbrs] == u
            if not hits.any():
                continue
            count = int(hits.sum())
            supports[int(out_eids[index])] += count
            np.add.at(supports, v_eids[hits], 1)
            np.add.at(supports, marker_eid[v_nbrs[hits]], 1)
    # One sequential flush of the finished support file.
    supports_file.write_slice(0, supports)
    memory.release(memory_tag)
    memory.release(f"{name}.accumulator")
    memory.release(f"{name}.order")
    heads_file.free()
    eids_file.free()
    triangle_count = int(supports.sum()) // 3
    zero_edges = int((supports == 0).sum())
    max_support = int(supports.max()) if graph.m else 0
    return SupportScan(supports_file, triangle_count, zero_edges, max_support)
