"""Triangle counting and enumeration utilities.

These are the in-memory reference implementations used to validate the
semi-external support scan and to drive small-graph analyses (the Fig 9 case
study, the Lemma 1 bound computations in tests).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..graph.memgraph import Graph


def triangle_count(graph: Graph) -> int:
    """Number of distinct triangles in *graph* (via edge supports)."""
    return graph.triangle_count()


def enumerate_triangles(graph: Graph) -> Iterator[Tuple[int, int, int]]:
    """Yield every triangle once as ``(u, v, w)`` with ``u < v < w``.

    Forward-neighbour merge: for each edge ``(u, v)`` with ``u < v``, report
    common neighbours ``w > v``.
    """
    for u in range(graph.n):
        nbrs_u = graph.neighbors(u)
        forward_u = nbrs_u[nbrs_u > u]
        if len(forward_u) == 0:
            continue
        u_set = set(int(x) for x in forward_u)
        for v in forward_u:
            nbrs_v = graph.neighbors(int(v))
            for w in nbrs_v[nbrs_v > v]:
                if int(w) in u_set:
                    yield (u, int(v), int(w))


def edge_triangle_supports_naive(graph: Graph) -> np.ndarray:
    """Per-edge supports by brute-force triangle enumeration.

    Quadratic-ish; for cross-checking :meth:`Graph.edge_supports` in tests.
    """
    supports = np.zeros(graph.m, dtype=np.int64)
    for u, v, w in enumerate_triangles(graph):
        supports[graph.edge_id(u, v)] += 1
        supports[graph.edge_id(u, w)] += 1
        supports[graph.edge_id(v, w)] += 1
    return supports


def local_clustering(graph: Graph, v: int) -> float:
    """Clustering coefficient of vertex *v* (0.0 when degree < 2)."""
    nbrs = graph.neighbors(v)
    degree = len(nbrs)
    if degree < 2:
        return 0.0
    nbr_set = set(int(x) for x in nbrs)
    links = 0
    for u in nbrs:
        for w in graph.neighbors(int(u)):
            if int(w) in nbr_set and int(w) > int(u):
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def global_clustering(graph: Graph) -> float:
    """Transitivity: ``3 * triangles / open wedges`` (0.0 if no wedges)."""
    degrees = graph.degrees
    wedges = int((degrees * (degrees - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * graph.triangle_count() / wedges
