"""Simulated block device with an LRU page cache and exact I/O accounting.

The paper's external-memory model (Aggarwal & Vitter) charges one I/O for
every block of ``B`` bytes moved between disk and memory. This module
implements that model in-process:

* a :class:`BlockDevice` owns an LRU cache of *cache_blocks* block frames;
* data structures (``DiskArray``, graphs, heaps) register *extents* — named,
  block-aligned regions — and route every element access through
  :meth:`BlockDevice.touch_read` / :meth:`BlockDevice.touch_write`;
* touching a non-resident block charges one read I/O; evicting or flushing a
  dirty block charges one write I/O.

The simulator tracks residency and dirtiness rather than shuttling byte
buffers: payload bytes live in the owning structure's numpy arrays. This
keeps pure-Python overhead tolerable while preserving exactly the quantity
the paper's experiments compare — block I/O counts (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import DeviceError
from .cache_policies import make_cache
from .stats import IOStats

#: Default block size, matching the paper's experimental setup (4 KiB pages).
DEFAULT_BLOCK_SIZE = 4096

#: Default number of cached block frames (= 4 MiB of buffer pool at 4 KiB).
DEFAULT_CACHE_BLOCKS = 1024


class BlockDevice:
    """A simulated disk: named extents, an LRU block cache, I/O counters.

    Parameters
    ----------
    block_size:
        Bytes per block (``B`` in the I/O model).
    cache_blocks:
        Number of block frames in the simulated buffer pool (``M/B``).
    stats:
        Optional shared :class:`IOStats`; a fresh one is created if omitted.

    Example
    -------
    >>> dev = BlockDevice(block_size=64, cache_blocks=2)
    >>> eid = dev.allocate("support", 100 * 8)
    >>> dev.touch_read(eid, 0, 8)      # first touch: 1 read I/O
    >>> dev.stats.read_ios
    1
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        stats: IOStats = None,
        policy: str = "lru",
    ) -> None:
        if block_size <= 0:
            raise DeviceError(f"block_size must be positive, got {block_size}")
        if cache_blocks <= 0:
            raise DeviceError(f"cache_blocks must be positive, got {cache_blocks}")
        self.block_size = block_size
        self.cache_blocks = cache_blocks
        self.stats = stats if stats is not None else IOStats()
        # extent id -> (name, size in bytes)
        self._extents: Dict[int, Tuple[str, int]] = {}
        self._extent_names: Dict[int, str] = {}
        self._next_extent = 0
        # buffer pool: (extent, block index) -> dirty flag, managed by a
        # pluggable replacement policy (lru / fifo / clock).
        self.policy = policy
        self._cache = make_cache(policy, cache_blocks)
        # per-extent-name [read_ios, write_ios] breakdown
        self._extent_io: Dict[str, list] = {}

    @classmethod
    def for_semi_external(
        cls,
        num_vertices: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        headroom: float = 4.0,
        stats: IOStats = None,
    ) -> "BlockDevice":
        """A device whose buffer pool respects the semi-external model.

        The model allows ``O(n)`` node-indexed state in memory while
        edge-indexed state must live on disk; a buffer pool that holds the
        whole edge file would silently convert every algorithm into an
        in-memory one and erase the I/O differences the paper measures.
        This constructor sizes the pool at ``headroom * 8 * n`` bytes
        (minimum 64 KiB), i.e. a few node-arrays' worth of pages.
        """
        cache_bytes = max(64 * 1024, int(headroom * 8 * max(num_vertices, 1)))
        return cls(block_size, max(8, cache_bytes // block_size), stats=stats)

    # ------------------------------------------------------------------ #
    # extent management
    # ------------------------------------------------------------------ #

    def allocate(self, name: str, nbytes: int) -> int:
        """Register an extent of *nbytes* and return its id."""
        if nbytes < 0:
            raise DeviceError(f"extent size must be non-negative, got {nbytes}")
        extent = self._next_extent
        self._next_extent += 1
        self._extents[extent] = (name, nbytes)
        self._extent_names[extent] = name
        return extent

    def free(self, extent: int) -> None:
        """Drop an extent and evict its cached blocks without write-back.

        Freeing models deleting a scratch file: dirty pages of a deleted
        file never reach the platter, so no write I/O is charged.
        """
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")
        del self._extents[extent]
        stale = [key for key, _dirty in self._cache.items() if key[0] == extent]
        for key in stale:
            self._cache.discard(key)

    def grow(self, extent: int, nbytes: int) -> None:
        """Enlarge an extent (models a file growing at its tail)."""
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")
        name, size = self._extents[extent]
        if nbytes < size:
            raise DeviceError(f"cannot shrink extent {name!r} ({size} -> {nbytes})")
        self._extents[extent] = (name, nbytes)

    def extent_size(self, extent: int) -> int:
        """Size in bytes of a registered extent."""
        try:
            return self._extents[extent][1]
        except KeyError:
            raise DeviceError(f"unknown extent id {extent}") from None

    @property
    def used_bytes(self) -> int:
        """Total bytes across live extents (simulated disk usage)."""
        return sum(size for _, size in self._extents.values())

    # ------------------------------------------------------------------ #
    # cache mechanics
    # ------------------------------------------------------------------ #

    def _block_range(self, extent: int, offset: int, nbytes: int) -> range:
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")
        size = self._extents[extent][1]
        if offset < 0 or nbytes < 0 or offset + nbytes > size:
            raise DeviceError(
                f"access [{offset}, {offset + nbytes}) outside extent of {size} bytes"
            )
        if nbytes == 0:
            return range(0)
        first = offset // self.block_size
        last = (offset + nbytes - 1) // self.block_size
        return range(first, last + 1)

    def _charge_read(self, extent: int) -> None:
        self.stats.read_ios += 1
        self.stats.bytes_read += self.block_size
        self._extent_io.setdefault(self._extent_names.get(extent, "?"), [0, 0])[0] += 1

    def _charge_write(self, extent: int) -> None:
        self.stats.write_ios += 1
        self.stats.bytes_written += self.block_size
        self._extent_io.setdefault(self._extent_names.get(extent, "?"), [0, 0])[1] += 1

    def _insert_block(self, key: Tuple[int, int], dirty: bool) -> None:
        """Admit a block to the pool, evicting (and charging) if full."""
        evicted = self._cache.insert(key, dirty)
        if evicted is not None and evicted[1]:
            self._charge_write(evicted[0][0])

    def _touch_block(self, key: Tuple[int, int], write: bool) -> None:
        cached = self._cache.lookup(key)
        if cached is None:
            # Miss: fetch block from disk.
            self._charge_read(key[0])
            self._insert_block(key, dirty=write)
        elif write and not cached:
            self._cache.set_dirty(key, True)

    def touch_read(self, extent: int, offset: int, nbytes: int) -> None:
        """Charge the I/O for reading *nbytes* at *offset* of *extent*."""
        for block in self._block_range(extent, offset, nbytes):
            self._touch_block((extent, block), write=False)

    def touch_write(self, extent: int, offset: int, nbytes: int) -> None:
        """Charge the I/O for writing *nbytes* at *offset* of *extent*.

        A write to a non-resident block first faults it in (read-modify-
        write), except when the write covers the whole block, in which case
        no read is charged.
        """
        block_size = self.block_size
        for block in self._block_range(extent, offset, nbytes):
            key = (extent, block)
            block_start = block * block_size
            covers_block = offset <= block_start and offset + nbytes >= block_start + block_size
            cached = self._cache.lookup(key)
            if cached is None:
                if not covers_block:
                    self._charge_read(extent)
                self._insert_block(key, dirty=True)
            elif not cached:
                self._cache.set_dirty(key, True)

    def append_write(self, extent: int, offset: int, nbytes: int) -> None:
        """Charge sequential append-style writes (no read-before-write)."""
        for block in self._block_range(extent, offset, nbytes):
            key = (extent, block)
            self._cache.discard(key)
            self._insert_block(key, dirty=True)

    def flush(self) -> None:
        """Write back every dirty cached block (e.g. at algorithm end)."""
        for key, dirty in self._cache.items():
            if dirty:
                self._charge_write(key[0])
                self._cache.set_dirty(key, False)

    def io_by_extent(self) -> Dict[str, Tuple[int, int]]:
        """Breakdown ``extent name -> (read_ios, write_ios)``.

        Names aggregate across extents sharing a label (e.g. successive
        probe subgraphs). Counts cover the device's whole lifetime; use
        snapshots of :attr:`stats` for per-phase totals.
        """
        return {
            name: (reads, writes)
            for name, (reads, writes) in sorted(self._extent_io.items())
        }

    def drop_cache(self) -> None:
        """Flush, then empty the cache (cold-cache experiment support)."""
        self.flush()
        self._cache.clear()

    @property
    def cached_block_count(self) -> int:
        """Number of blocks currently resident in the buffer pool."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockDevice(block_size={self.block_size}, cache_blocks={self.cache_blocks}, "
            f"policy={self.policy!r}, extents={len(self._extents)}, cached={len(self._cache)})"
        )
