"""Simulated block device with an LRU page cache and exact I/O accounting.

The paper's external-memory model (Aggarwal & Vitter) charges one I/O for
every block of ``B`` bytes moved between disk and memory. This module
implements that model in-process:

* a :class:`BlockDevice` owns an LRU cache of *cache_blocks* block frames;
* data structures (``DiskArray``, graphs, heaps) register *extents* — named,
  block-aligned regions — and route every element access through
  :meth:`BlockDevice.touch_read` / :meth:`BlockDevice.touch_write`;
* touching a non-resident block charges one read I/O; evicting or flushing a
  dirty block charges one write I/O.

The simulator tracks residency and dirtiness rather than shuttling byte
buffers: payload bytes live in the owning structure's numpy arrays. This
keeps pure-Python overhead tolerable while preserving exactly the quantity
the paper's experiments compare — block I/O counts (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import DeviceError
from .cache_policies import make_cache
from .stats import IOStats

#: Default block size, matching the paper's experimental setup (4 KiB pages).
DEFAULT_BLOCK_SIZE = 4096

#: Default number of cached block frames (= 4 MiB of buffer pool at 4 KiB).
DEFAULT_CACHE_BLOCKS = 1024

#: Batches at or below this size take the scalar loop: the numpy setup of
#: the vectorized path costs more than it saves on a handful of accesses.
#: Purely a latency knob — both sides charge identical I/O.
_SMALL_BATCH = 8


def count_block_touches(offsets, lengths, block_size: int) -> int:
    """Blocks spanned by each ``(offset, nbytes)`` access, summed.

    The vectorized closed form of what :meth:`BlockDevice.touch_read`
    tallies when touch counting is enabled: an access spanning bytes
    ``[o, o + l)`` touches ``(o + l - 1) // B - o // B + 1`` blocks
    (zero-length accesses touch none). Parallel workers use this to claim
    their shard's block-touch counts without a device; the ledger merge
    cross-checks the claim against the parent device's replayed tally.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if np.ndim(lengths) == 0:
        lengths = np.full(offsets.shape, int(lengths), dtype=np.int64)
    else:
        lengths = np.asarray(lengths, dtype=np.int64)
    if offsets.size == 0:
        return 0
    nonzero = lengths > 0
    if not nonzero.all():
        offsets, lengths = offsets[nonzero], lengths[nonzero]
        if offsets.size == 0:
            return 0
    spans = (offsets + lengths - 1) // block_size - offsets // block_size + 1
    return int(spans.sum())


class BlockDevice:
    """A simulated disk: named extents, an LRU block cache, I/O counters.

    Parameters
    ----------
    block_size:
        Bytes per block (``B`` in the I/O model).
    cache_blocks:
        Number of block frames in the simulated buffer pool (``M/B``).
    stats:
        Optional shared :class:`IOStats`; a fresh one is created if omitted.

    Example
    -------
    >>> dev = BlockDevice(block_size=64, cache_blocks=2)
    >>> eid = dev.allocate("support", 100 * 8)
    >>> dev.touch_read(eid, 0, 8)      # first touch: 1 read I/O
    >>> dev.stats.read_ios
    1
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        stats: IOStats = None,
        policy: str = "lru",
    ) -> None:
        if block_size <= 0:
            raise DeviceError(f"block_size must be positive, got {block_size}")
        if cache_blocks <= 0:
            raise DeviceError(f"cache_blocks must be positive, got {cache_blocks}")
        self.block_size = block_size
        self.cache_blocks = cache_blocks
        self.stats = stats if stats is not None else IOStats()
        #: When set, every write-side touch raises :class:`DeviceError`.
        #: The serve read path flips this on to prove queries cannot mutate
        #: a published snapshot (see ``ExecutionContext(readonly=True)``).
        self.readonly = False
        # extent id -> (name, size in bytes)
        self._extents: Dict[int, Tuple[str, int]] = {}
        self._extent_names: Dict[int, str] = {}
        self._next_extent = 0
        # buffer pool: (extent, block index) -> dirty flag, managed by a
        # pluggable replacement policy (lru / fifo / clock).
        self.policy = policy
        self._cache = make_cache(policy, cache_blocks)
        # per-extent-name [read_ios, write_ios] breakdown
        self._extent_io: Dict[str, list] = {}
        # Optional per-extent-name block-touch tally for cache attribution
        # (a touch that charged no read was a hit). ``None`` — the default —
        # keeps every hot path on its historical branch: tracing cannot
        # perturb the charged ledger unless explicitly enabled.
        self._touch_counts: Dict[str, int] = None

    @classmethod
    def for_semi_external(
        cls,
        num_vertices: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        headroom: float = 4.0,
        stats: IOStats = None,
        policy: str = "lru",
    ) -> "BlockDevice":
        """A device whose buffer pool respects the semi-external model.

        The model allows ``O(n)`` node-indexed state in memory while
        edge-indexed state must live on disk; a buffer pool that holds the
        whole edge file would silently convert every algorithm into an
        in-memory one and erase the I/O differences the paper measures.
        This constructor sizes the pool at ``headroom * 8 * n`` bytes
        (minimum 64 KiB), i.e. a few node-arrays' worth of pages.
        """
        cache_bytes = max(64 * 1024, int(headroom * 8 * max(num_vertices, 1)))
        return cls(
            block_size, max(8, cache_bytes // block_size), stats=stats,
            policy=policy,
        )

    # ------------------------------------------------------------------ #
    # extent management
    # ------------------------------------------------------------------ #

    def allocate(self, name: str, nbytes: int) -> int:
        """Register an extent of *nbytes* and return its id."""
        if nbytes < 0:
            raise DeviceError(f"extent size must be non-negative, got {nbytes}")
        extent = self._next_extent
        self._next_extent += 1
        self._extents[extent] = (name, nbytes)
        self._extent_names[extent] = name
        return extent

    def free(self, extent: int) -> None:
        """Drop an extent and evict its cached blocks without write-back.

        Freeing models deleting a scratch file: dirty pages of a deleted
        file never reach the platter, so no write I/O is charged.
        """
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")
        del self._extents[extent]
        stale = [key for key, _dirty in self._cache.items() if key[0] == extent]
        for key in stale:
            self._cache.discard(key)

    def grow(self, extent: int, nbytes: int) -> None:
        """Enlarge an extent (models a file growing at its tail)."""
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")
        name, size = self._extents[extent]
        if nbytes < size:
            raise DeviceError(f"cannot shrink extent {name!r} ({size} -> {nbytes})")
        self._extents[extent] = (name, nbytes)

    def extent_size(self, extent: int) -> int:
        """Size in bytes of a registered extent."""
        try:
            return self._extents[extent][1]
        except KeyError:
            raise DeviceError(f"unknown extent id {extent}") from None

    @property
    def used_bytes(self) -> int:
        """Total bytes across live extents (simulated disk usage)."""
        return sum(size for _, size in self._extents.values())

    # ------------------------------------------------------------------ #
    # cache mechanics
    # ------------------------------------------------------------------ #

    def _block_range(self, extent: int, offset: int, nbytes: int) -> range:
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")
        size = self._extents[extent][1]
        if offset < 0 or nbytes < 0 or offset + nbytes > size:
            raise DeviceError(
                f"access [{offset}, {offset + nbytes}) outside extent of {size} bytes"
            )
        if nbytes == 0:
            return range(0)
        first = offset // self.block_size
        last = (offset + nbytes - 1) // self.block_size
        return range(first, last + 1)

    def enable_touch_counting(self) -> None:
        """Start tallying block touches per extent (tracer attribution).

        Touches are app-level block accesses: every block visited by a
        ``touch_read`` / ``touch_write`` (batch forms count the expanded
        per-block sequence, i.e. exactly what the scalar loop would
        visit) and every block of an ``append_write``. Combined with the
        charged read count, they attribute the cache: *misses* are the
        charged reads, *hits* are the touches that charged nothing.
        Counting never feeds back into the charged ledger.
        """
        if self._touch_counts is None:
            self._touch_counts = {}

    def touch_counts_by_extent(self) -> Dict[str, int]:
        """Snapshot of the per-extent touch tally (empty when disabled)."""
        return dict(self._touch_counts) if self._touch_counts is not None else {}

    @property
    def touch_counting_enabled(self) -> bool:
        """Whether :meth:`enable_touch_counting` has run (ledger-merge audits)."""
        return self._touch_counts is not None

    def _bump_touches(self, extent: int, count: int) -> None:
        name = self._extent_names.get(extent, "?")
        self._touch_counts[name] = self._touch_counts.get(name, 0) + count

    def _charge_read(self, extent: int) -> None:
        self.stats.read_ios += 1
        self.stats.bytes_read += self.block_size
        self._extent_io.setdefault(self._extent_names.get(extent, "?"), [0, 0])[0] += 1

    def _charge_write(self, extent: int) -> None:
        self.stats.write_ios += 1
        self.stats.bytes_written += self.block_size
        self._extent_io.setdefault(self._extent_names.get(extent, "?"), [0, 0])[1] += 1

    def _charge_read_block(self, key: Tuple[int, int]) -> None:
        """Charge one read of a specific block.

        The scalar paths route per-block reads through here so a physical
        backend (:class:`~repro.persistence.FileBlockDevice`) can move the
        actual block while charging identically. The base implementation
        only posts the counters.
        """
        self._charge_read(key[0])

    def _charge_write_block(self, key: Tuple[int, int]) -> None:
        """Charge one write of a specific block (see :meth:`_charge_read_block`)."""
        self._charge_write(key[0])

    def _charge_reads_bulk(self, extent: int, count: int) -> None:
        """Charge *count* read I/Os against one extent in a single update.

        Counters are order-insensitive, so the batch paths accumulate their
        charges and post them once instead of per block.
        """
        self.stats.read_ios += count
        self.stats.bytes_read += count * self.block_size
        self._extent_io.setdefault(
            self._extent_names.get(extent, "?"), [0, 0]
        )[0] += count

    def _charge_writes_bulk(self, extent: int, count: int) -> None:
        self.stats.write_ios += count
        self.stats.bytes_written += count * self.block_size
        self._extent_io.setdefault(
            self._extent_names.get(extent, "?"), [0, 0]
        )[1] += count

    def _charge_eviction_writes(self, victims) -> None:
        """Charge one write per evicted dirty block, grouped by extent."""
        counts: Dict[int, int] = {}
        for victim_extent, _block in victims:
            counts[victim_extent] = counts.get(victim_extent, 0) + 1
        for victim_extent, count in counts.items():
            self._charge_writes_bulk(victim_extent, count)

    def _insert_block(self, key: Tuple[int, int], dirty: bool) -> None:
        """Admit a block to the pool, evicting (and charging) if full."""
        evicted = self._cache.insert(key, dirty)
        if evicted is not None and evicted[1]:
            self._charge_write_block(evicted[0])

    def _touch_block(self, key: Tuple[int, int], write: bool) -> None:
        cached = self._cache.lookup(key)
        if cached is None:
            # Miss: fetch block from disk.
            self._charge_read_block(key)
            self._insert_block(key, dirty=write)
        elif write and not cached:
            self._cache.set_dirty(key, True)

    def _require_writable(self) -> None:
        if self.readonly:
            raise DeviceError(
                "write touch on a read-only device (snapshot queries must "
                "not mutate served state)"
            )

    def touch_read(self, extent: int, offset: int, nbytes: int) -> None:
        """Charge the I/O for reading *nbytes* at *offset* of *extent*."""
        blocks = self._block_range(extent, offset, nbytes)
        if self._touch_counts is not None and len(blocks):
            self._bump_touches(extent, len(blocks))
        for block in blocks:
            self._touch_block((extent, block), write=False)

    def touch_write(self, extent: int, offset: int, nbytes: int) -> None:
        """Charge the I/O for writing *nbytes* at *offset* of *extent*.

        A write to a non-resident block first faults it in (read-modify-
        write), except when the write covers the whole block, in which case
        no read is charged.
        """
        self._require_writable()
        block_size = self.block_size
        blocks = self._block_range(extent, offset, nbytes)
        if self._touch_counts is not None and len(blocks):
            self._bump_touches(extent, len(blocks))
        for block in blocks:
            key = (extent, block)
            block_start = block * block_size
            covers_block = offset <= block_start and offset + nbytes >= block_start + block_size
            cached = self._cache.lookup(key)
            if cached is None:
                if not covers_block:
                    self._charge_read_block(key)
                self._insert_block(key, dirty=True)
            elif not cached:
                self._cache.set_dirty(key, True)

    # ------------------------------------------------------------------ #
    # vectorized batch accounting (the fast path)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _normalize_batch(offsets, lengths):
        """Coerce batch operands: offsets to a 1-d int64 array, lengths to
        either an aligned array or a plain int.

        A scalar *lengths* broadcasts over *offsets* (the uniform-element
        case of ``DiskArray.gather``/``scatter``) and is kept scalar so the
        hot path never materialises a constant array.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim == 0:
            offsets = offsets.reshape(1)
        if np.ndim(lengths) == 0:
            return offsets, int(lengths)
        lengths = np.asarray(lengths, dtype=np.int64)
        if offsets.shape != lengths.shape:
            raise DeviceError("batch touch: offsets and lengths length mismatch")
        return offsets, lengths

    def _batch_runs(self, extent: int, offsets, lengths, need_covers: bool):
        """Translate many ``(offset, nbytes)`` accesses into run-compressed
        block touches, vectorized.

        Block ids are computed with numpy, consecutive duplicate blocks are
        collapsed into *runs* (``np.diff``-style), and for each run we keep
        whether it had repeats (so recency/reference bits can be refreshed
        exactly as the scalar path would) and — for writes — whether the
        run's *first* access covers its whole block (later accesses of a run
        always find the block resident, so only the first covers flag can
        matter).

        *lengths* is an aligned array or a plain non-negative int (uniform
        access size). Returns ``(blocks, has_repeat, covers)`` as python
        lists (``covers`` is ``None`` unless *need_covers*; ``has_repeat``
        is ``None`` when the cache policy declares repeats idempotent via
        ``needs_repeats``), or ``None`` when no non-empty access remains.
        """
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")
        if offsets.size == 0:
            return None
        size = self._extents[extent][1]
        scalar_length = isinstance(lengths, int)
        ends = offsets + lengths
        min_length = lengths if scalar_length else int(lengths.min())
        if int(offsets.min()) < 0 or min_length < 0 or int(ends.max()) > size:
            raise DeviceError(
                f"batch access outside extent of {size} bytes"
            )
        if min_length == 0:
            if scalar_length:
                return None  # every access is empty
            nonzero = lengths > 0
            offsets = offsets[nonzero]
            lengths = lengths[nonzero]
            ends = ends[nonzero]
            if offsets.size == 0:
                return None
        block_size = self.block_size
        first = offsets // block_size
        last = (ends - 1) // block_size
        spans = last - first + 1
        if int(spans.max()) == 1:
            # Common case: every access falls inside a single block.
            blocks = first
            acc_offsets, acc_lengths = offsets, lengths
        else:
            # Expand each access into its per-block touches, preserving the
            # scalar path's visit order.
            total = int(spans.sum())
            starts = np.cumsum(spans) - spans
            intra = np.arange(total, dtype=np.int64) - np.repeat(starts, spans)
            blocks = np.repeat(first, spans) + intra
            acc_offsets = np.repeat(offsets, spans)
            acc_lengths = (
                lengths if scalar_length else np.repeat(lengths, spans)
            )
        # Run compression: collapse consecutive duplicate blocks.
        num_blocks = len(blocks)
        if self._touch_counts is not None:
            # Tally the expanded per-block sequence — identical to what
            # the equivalent scalar loop would have counted.
            self._bump_touches(extent, num_blocks)
        need_repeats = self._cache.needs_repeats
        if num_blocks > 1:
            run_start_mask = np.empty(num_blocks, dtype=bool)
            run_start_mask[0] = True
            np.not_equal(blocks[1:], blocks[:-1], out=run_start_mask[1:])
            run_starts = np.flatnonzero(run_start_mask)
            run_blocks = blocks[run_starts]
            if need_repeats:
                num_runs = len(run_starts)
                has_repeat = np.empty(num_runs, dtype=bool)
                if num_runs > 1:
                    np.greater(run_starts[1:] - run_starts[:-1], 1,
                               out=has_repeat[:-1])
                has_repeat[-1] = (num_blocks - int(run_starts[-1])) > 1
        else:
            run_starts = np.zeros(1, dtype=np.int64)
            run_blocks = blocks
            if need_repeats:
                has_repeat = np.zeros(1, dtype=bool)
        covers = None
        if need_covers:
            run_offsets = acc_offsets[run_starts]
            if scalar_length:
                run_lengths = acc_lengths
            else:
                run_lengths = acc_lengths[run_starts]
            block_starts = run_blocks * block_size
            covers = (
                (run_offsets <= block_starts)
                & (run_offsets + run_lengths >= block_starts + block_size)
            ).tolist()
        repeats = has_repeat.tolist() if need_repeats else None
        return run_blocks.tolist(), repeats, covers

    def touch_read_batch(self, extent: int, offsets, lengths) -> None:
        """Vectorized :meth:`touch_read` over many accesses at once.

        *offsets* / *lengths* are equal-length integer arrays (a scalar
        *lengths* broadcasts). Charges **exactly** the I/O the equivalent
        sequence of scalar :meth:`touch_read` calls would charge, and leaves
        the cache (residency, recency, reference and dirty bits) in the
        identical state — see :class:`ReferenceBlockDevice` and the
        equivalence guard tests.
        """
        offsets, lengths = self._normalize_batch(offsets, lengths)
        if offsets.size <= _SMALL_BATCH:
            # Tiny batches: the scalar loop *is* the batch path (run
            # compression cannot beat the numpy setup cost at this size).
            if isinstance(lengths, int):
                for offset in offsets.tolist():
                    self.touch_read(extent, offset, lengths)
            else:
                for offset, nbytes in zip(offsets.tolist(), lengths.tolist()):
                    self.touch_read(extent, offset, nbytes)
            return
        runs = self._batch_runs(extent, offsets, lengths, need_covers=False)
        if runs is None:
            return
        blocks, repeats, _ = runs
        # The cache applies the whole run sequence in one tight loop; a
        # collapsed run of k >= 2 scalar touches differs from one touch only
        # by the (idempotent) recency/reference refresh of the later hits,
        # which the policy's bulk hook restores from the repeat flags.
        misses, evicted_dirty = self._cache.bulk_read(extent, blocks, repeats)
        if misses:
            self._charge_reads_bulk(extent, misses)
        if evicted_dirty:
            self._charge_eviction_writes(evicted_dirty)

    def touch_write_batch(self, extent: int, offsets, lengths) -> None:
        """Vectorized :meth:`touch_write` over many accesses at once.

        Charges identical I/O (including read-modify-write faults for runs
        whose first access does not cover its whole block) and identical
        cache state to the scalar loop.
        """
        self._require_writable()
        offsets, lengths = self._normalize_batch(offsets, lengths)
        if offsets.size <= _SMALL_BATCH:
            if isinstance(lengths, int):
                for offset in offsets.tolist():
                    self.touch_write(extent, offset, lengths)
            else:
                for offset, nbytes in zip(offsets.tolist(), lengths.tolist()):
                    self.touch_write(extent, offset, nbytes)
            return
        runs = self._batch_runs(extent, offsets, lengths, need_covers=True)
        if runs is None:
            return
        blocks, repeats, covers = runs
        faults, evicted_dirty = self._cache.bulk_write(
            extent, blocks, repeats, covers
        )
        if faults:
            self._charge_reads_bulk(extent, faults)
        if evicted_dirty:
            self._charge_eviction_writes(evicted_dirty)

    def append_write(self, extent: int, offset: int, nbytes: int) -> None:
        """Charge sequential append-style writes (no read-before-write)."""
        self._require_writable()
        blocks = self._block_range(extent, offset, nbytes)
        if self._touch_counts is not None and len(blocks):
            self._bump_touches(extent, len(blocks))
        for block in blocks:
            key = (extent, block)
            self._cache.discard(key)
            self._insert_block(key, dirty=True)

    def flush(self) -> None:
        """Write back every dirty cached block (e.g. at algorithm end)."""
        for key, dirty in self._cache.items():
            if dirty:
                self._charge_write_block(key)
                self._cache.set_dirty(key, False)

    def close(self) -> None:
        """Flush and release the device.

        The simulator holds no OS resources, so closing only writes back
        dirty blocks; file-backed devices additionally sync and delete
        their spill file. Safe to call more than once.
        """
        self.flush()

    def io_by_extent(self) -> Dict[str, Tuple[int, int]]:
        """Breakdown ``extent name -> (read_ios, write_ios)``.

        Names aggregate across extents sharing a label (e.g. successive
        probe subgraphs). Counts cover the device's whole lifetime; use
        snapshots of :attr:`stats` for per-phase totals.
        """
        return {
            name: (reads, writes)
            for name, (reads, writes) in sorted(self._extent_io.items())
        }

    def drop_cache(self) -> None:
        """Flush, then empty the cache (cold-cache experiment support)."""
        self.flush()
        self._cache.clear()

    @property
    def cached_block_count(self) -> int:
        """Number of blocks currently resident in the buffer pool."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockDevice(block_size={self.block_size}, cache_blocks={self.cache_blocks}, "
            f"policy={self.policy!r}, extents={len(self._extents)}, cached={len(self._cache)})"
        )


class InMemoryBlockDevice(BlockDevice):
    """A null-charging device: every touch is free, counters stay at zero.

    Extent bookkeeping (allocate / grow / free / bounds) is kept so data
    structures behave identically, but no block ever becomes resident and
    no I/O is charged — the storage-model analogue of running the whole
    computation in memory. This backs the engine's ``inmemory`` backend,
    used for ground-truth answers and CI-speed runs where the I/O bill is
    irrelevant.

    >>> dev = InMemoryBlockDevice(block_size=64, cache_blocks=2)
    >>> eid = dev.allocate("support", 100 * 8)
    >>> dev.touch_read(eid, 0, 8)
    >>> dev.stats.read_ios
    0
    """

    def _check_extent(self, extent: int) -> None:
        if extent not in self._extents:
            raise DeviceError(f"unknown extent id {extent}")

    def touch_read(self, extent: int, offset: int, nbytes: int) -> None:
        self._check_extent(extent)

    def touch_write(self, extent: int, offset: int, nbytes: int) -> None:
        self._require_writable()
        self._check_extent(extent)

    def touch_read_batch(self, extent: int, offsets, lengths) -> None:
        self._check_extent(extent)

    def touch_write_batch(self, extent: int, offsets, lengths) -> None:
        self._require_writable()
        self._check_extent(extent)

    def append_write(self, extent: int, offset: int, nbytes: int) -> None:
        self._require_writable()
        self._check_extent(extent)

    def flush(self) -> None:
        pass

    def drop_cache(self) -> None:
        pass


class ReferenceBlockDevice(BlockDevice):
    """The slow reference implementation of the batch accounting contract.

    Batch touches are processed as the literal per-access scalar loop (the
    pre-vectorization behaviour). The simulator's only contract is block-I/O
    counts, so :class:`BlockDevice`'s vectorized fast path must charge — and
    leave the cache in — *exactly* what this device does; the equivalence
    guard (``tests/test_batch_equivalence.py``) asserts identical
    :class:`IOStats` and :meth:`io_by_extent` across seeded workloads and
    full algorithm runs for every cache policy. Use it when auditing a new
    access pattern or debugging a count mismatch; all benchmarks use the
    fast path.
    """

    def touch_read_batch(self, extent: int, offsets, lengths) -> None:
        offsets, lengths = self._normalize_batch(offsets, lengths)
        if isinstance(lengths, int):
            lengths = [lengths] * offsets.size
        else:
            lengths = lengths.tolist()
        for offset, nbytes in zip(offsets.tolist(), lengths):
            self.touch_read(extent, offset, nbytes)

    def touch_write_batch(self, extent: int, offsets, lengths) -> None:
        offsets, lengths = self._normalize_batch(offsets, lengths)
        if isinstance(lengths, int):
            lengths = [lengths] * offsets.size
        else:
            lengths = lengths.tolist()
        for offset, nbytes in zip(offsets.tolist(), lengths):
            self.touch_write(extent, offset, nbytes)
