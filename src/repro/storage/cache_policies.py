"""Buffer-pool replacement policies for :class:`BlockDevice`.

The paper's experiments run on an OS page cache (effectively LRU-ish);
real buffer managers vary, and replacement policy visibly shifts I/O
counts for the scan-then-random-access patterns of truss peeling. Three
classic policies are provided:

* **LRU** — least-recently-used (default; matches the analysis model);
* **FIFO** — eviction in admission order, no access recency;
* **CLOCK** — the second-chance approximation of LRU used by most real
  buffer pools.

All expose the same minimal interface the device needs: ``lookup`` (and
touch), ``insert`` returning an evicted ``(key, dirty)`` or ``None``,
``discard``, ``set_dirty``, ``items``, ``clear``, ``__len__``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import DeviceError

Key = Tuple[int, int]
Evicted = Optional[Tuple[Key, bool]]


class LRUCache:
    """Least-recently-used over an ordered dict."""

    name = "lru"
    #: Collapsed re-touches of a run are idempotent here (``move_to_end``
    #: on the already-most-recent key), so the device may skip computing
    #: repeat flags entirely.
    needs_repeats = False

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Key, bool]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def lookup(self, key: Key) -> Optional[bool]:
        """Return the dirty flag and refresh recency; ``None`` on miss."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def insert(self, key: Key, dirty: bool) -> Evicted:
        """Insert/overwrite; returns the evicted entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = dirty
            return None
        self._entries[key] = dirty
        if len(self._entries) > self.capacity:
            return self._entries.popitem(last=False)
        return None

    def discard(self, key: Key) -> Optional[bool]:
        """Drop an entry (no eviction charge); returns its dirty flag."""
        return self._entries.pop(key, None)

    def set_dirty(self, key: Key, dirty: bool) -> None:
        """Update a resident entry's dirty flag without recency change.

        A non-resident key is a caller bug: silently inserting it would
        grow the pool past capacity, bypassing eviction accounting.
        """
        if key not in self._entries:
            raise DeviceError(f"set_dirty on non-resident block {key}")
        self._entries[key] = dirty

    def items(self) -> Iterator[Tuple[Key, bool]]:
        return iter(list(self._entries.items()))

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------ #
    # bulk batch hooks (device fast path)
    # ------------------------------------------------------------------ #
    #
    # These apply a run-compressed sequence of block touches in one call,
    # equivalent — touch for touch — to the scalar lookup/insert/set_dirty
    # protocol of BlockDevice._touch_block / touch_write, but with the
    # per-block method dispatch hoisted out. They return charge *counts*
    # (counters are order-insensitive) plus the dirty eviction victims, so
    # the device can post the I/O in bulk.
    #
    # *repeats* flags runs that collapsed >= 2 scalar touches. For LRU the
    # extra touches only re-run ``move_to_end`` on the already-most-recent
    # key, and for FIFO lookups mutate nothing, so both ignore the flag;
    # CLOCK must honour it (a repeat earns a freshly admitted block its
    # reference bit).

    def bulk_read(self, extent: int, blocks, repeats) -> Tuple[int, List[Key]]:
        """Apply read touches; returns ``(miss_count, evicted_dirty_keys)``."""
        entries = self._entries
        capacity = self.capacity
        move = entries.move_to_end
        pop = entries.popitem
        size = len(entries)
        misses = 0
        evicted_dirty: List[Key] = []
        for block in blocks:
            key = (extent, block)
            if key in entries:
                move(key)
            else:
                misses += 1
                if size < capacity:
                    size += 1
                else:
                    victim, dirty = pop(last=False)
                    if dirty:
                        evicted_dirty.append(victim)
                entries[key] = False
        return misses, evicted_dirty

    def bulk_write(self, extent: int, blocks, repeats, covers) -> Tuple[int, List[Key]]:
        """Apply write touches; returns ``(fault_read_count, evicted_dirty_keys)``.

        ``covers[i]`` says whether run *i*'s first access spans its whole
        block (no read-modify-write fault). A resident block is marked
        dirty in place — idempotent when already dirty, and a plain
        ``__setitem__`` keeps its position, exactly like ``set_dirty``.
        """
        entries = self._entries
        capacity = self.capacity
        move = entries.move_to_end
        pop = entries.popitem
        size = len(entries)
        faults = 0
        evicted_dirty: List[Key] = []
        for block, cover in zip(blocks, covers):
            key = (extent, block)
            if key in entries:
                move(key)
                entries[key] = True
            else:
                if not cover:
                    faults += 1
                if size < capacity:
                    size += 1
                else:
                    victim, dirty = pop(last=False)
                    if dirty:
                        evicted_dirty.append(victim)
                entries[key] = True
        return faults, evicted_dirty


class FIFOCache(LRUCache):
    """First-in-first-out: like LRU but lookups don't refresh recency."""

    name = "fifo"

    def lookup(self, key: Key) -> Optional[bool]:
        return self._entries.get(key)

    def insert(self, key: Key, dirty: bool) -> Evicted:
        if key in self._entries:
            self._entries[key] = dirty  # keep original admission position
            return None
        self._entries[key] = dirty
        if len(self._entries) > self.capacity:
            return self._entries.popitem(last=False)
        return None

    def bulk_read(self, extent: int, blocks, repeats) -> Tuple[int, List[Key]]:
        entries = self._entries
        capacity = self.capacity
        pop = entries.popitem
        size = len(entries)
        misses = 0
        evicted_dirty: List[Key] = []
        for block in blocks:
            key = (extent, block)
            if key not in entries:
                misses += 1
                if size < capacity:
                    size += 1
                else:
                    victim, dirty = pop(last=False)
                    if dirty:
                        evicted_dirty.append(victim)
                entries[key] = False
        return misses, evicted_dirty

    def bulk_write(self, extent: int, blocks, repeats, covers) -> Tuple[int, List[Key]]:
        entries = self._entries
        capacity = self.capacity
        pop = entries.popitem
        size = len(entries)
        faults = 0
        evicted_dirty: List[Key] = []
        for block, cover in zip(blocks, covers):
            key = (extent, block)
            if key in entries:
                entries[key] = True  # set_dirty keeps the admission position
            else:
                if not cover:
                    faults += 1
                if size < capacity:
                    size += 1
                else:
                    victim, dirty = pop(last=False)
                    if dirty:
                        evicted_dirty.append(victim)
                entries[key] = True
        return faults, evicted_dirty


class ClockCache:
    """CLOCK (second chance): a circular buffer of frames with ref bits."""

    name = "clock"
    #: A repeat touch earns a freshly admitted block its reference bit, so
    #: the device must supply per-run repeat flags.
    needs_repeats = True

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._frames: List[Optional[Key]] = []
        self._index: Dict[Key, int] = {}
        self._dirty: Dict[Key, bool] = {}
        self._referenced: Dict[Key, bool] = {}
        self._hand = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Key) -> bool:
        return key in self._index

    def lookup(self, key: Key) -> Optional[bool]:
        if key not in self._index:
            return None
        self._referenced[key] = True
        return self._dirty[key]

    def _advance(self) -> int:
        while True:
            if self._hand >= len(self._frames):
                self._hand = 0
            key = self._frames[self._hand]
            if key is None:
                return self._hand
            if self._referenced.get(key, False):
                self._referenced[key] = False
                self._hand += 1
                continue
            return self._hand

    def insert(self, key: Key, dirty: bool) -> Evicted:
        if key in self._index:
            self._dirty[key] = dirty
            self._referenced[key] = True
            return None
        if len(self._frames) < self.capacity:
            self._frames.append(key)
            self._index[key] = len(self._frames) - 1
            self._dirty[key] = dirty
            # Admit unreferenced: the bit is earned by a subsequent hit
            # (the variant that keeps second-chance meaningful).
            self._referenced[key] = False
            return None
        slot = self._advance()
        victim = self._frames[slot]
        evicted: Evicted = None
        if victim is not None:
            evicted = (victim, self._dirty[victim])
            del self._index[victim]
            del self._dirty[victim]
            self._referenced.pop(victim, None)
        self._frames[slot] = key
        self._index[key] = slot
        self._dirty[key] = dirty
        self._referenced[key] = False
        self._hand = slot + 1
        return evicted

    def discard(self, key: Key) -> Optional[bool]:
        slot = self._index.pop(key, None)
        if slot is None:
            return None
        self._frames[slot] = None
        self._referenced.pop(key, None)
        return self._dirty.pop(key)

    def set_dirty(self, key: Key, dirty: bool) -> None:
        if key not in self._index:
            raise DeviceError(f"set_dirty on non-resident block {key}")
        self._dirty[key] = dirty

    def bulk_read(self, extent: int, blocks, repeats) -> Tuple[int, List[Key]]:
        index = self._index
        referenced = self._referenced
        misses = 0
        evicted_dirty: List[Key] = []
        for block, repeat in zip(blocks, repeats):
            key = (extent, block)
            if key in index:
                referenced[key] = True
            else:
                misses += 1
                evicted = self.insert(key, False)
                if evicted is not None and evicted[1]:
                    evicted_dirty.append(evicted[0])
                if repeat:
                    # The collapsed re-touches hit the fresh block and earn
                    # it the reference bit the admission withheld.
                    referenced[key] = True
        return misses, evicted_dirty

    def bulk_write(self, extent: int, blocks, repeats, covers) -> Tuple[int, List[Key]]:
        index = self._index
        dirty = self._dirty
        referenced = self._referenced
        faults = 0
        evicted_dirty: List[Key] = []
        for block, repeat, cover in zip(blocks, repeats, covers):
            key = (extent, block)
            if key in index:
                referenced[key] = True
                dirty[key] = True
            else:
                if not cover:
                    faults += 1
                evicted = self.insert(key, True)
                if evicted is not None and evicted[1]:
                    evicted_dirty.append(evicted[0])
                if repeat:
                    referenced[key] = True
        return faults, evicted_dirty

    def items(self) -> Iterator[Tuple[Key, bool]]:
        return iter([(k, self._dirty[k]) for k in self._index])

    def clear(self) -> None:
        self._frames.clear()
        self._index.clear()
        self._dirty.clear()
        self._referenced.clear()
        self._hand = 0


_POLICIES = {"lru": LRUCache, "fifo": FIFOCache, "clock": ClockCache}


def make_cache(policy: str, capacity: int):
    """Instantiate a cache by policy name (``lru`` / ``fifo`` / ``clock``)."""
    try:
        return _POLICIES[policy](capacity)
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown cache policy {policy!r}; known: {known}") from None
