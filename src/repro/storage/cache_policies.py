"""Buffer-pool replacement policies for :class:`BlockDevice`.

The paper's experiments run on an OS page cache (effectively LRU-ish);
real buffer managers vary, and replacement policy visibly shifts I/O
counts for the scan-then-random-access patterns of truss peeling. Three
classic policies are provided:

* **LRU** — least-recently-used (default; matches the analysis model);
* **FIFO** — eviction in admission order, no access recency;
* **CLOCK** — the second-chance approximation of LRU used by most real
  buffer pools.

All expose the same minimal interface the device needs: ``lookup`` (and
touch), ``insert`` returning an evicted ``(key, dirty)`` or ``None``,
``discard``, ``set_dirty``, ``items``, ``clear``, ``__len__``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

Key = Tuple[int, int]
Evicted = Optional[Tuple[Key, bool]]


class LRUCache:
    """Least-recently-used over an ordered dict."""

    name = "lru"

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Key, bool]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def lookup(self, key: Key) -> Optional[bool]:
        """Return the dirty flag and refresh recency; ``None`` on miss."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def insert(self, key: Key, dirty: bool) -> Evicted:
        """Insert/overwrite; returns the evicted entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = dirty
            return None
        self._entries[key] = dirty
        if len(self._entries) > self.capacity:
            return self._entries.popitem(last=False)
        return None

    def discard(self, key: Key) -> Optional[bool]:
        """Drop an entry (no eviction charge); returns its dirty flag."""
        return self._entries.pop(key, None)

    def set_dirty(self, key: Key, dirty: bool) -> None:
        """Update a resident entry's dirty flag without recency change."""
        self._entries[key] = dirty

    def items(self) -> Iterator[Tuple[Key, bool]]:
        return iter(list(self._entries.items()))

    def clear(self) -> None:
        self._entries.clear()


class FIFOCache(LRUCache):
    """First-in-first-out: like LRU but lookups don't refresh recency."""

    name = "fifo"

    def lookup(self, key: Key) -> Optional[bool]:
        return self._entries.get(key)

    def insert(self, key: Key, dirty: bool) -> Evicted:
        if key in self._entries:
            self._entries[key] = dirty  # keep original admission position
            return None
        self._entries[key] = dirty
        if len(self._entries) > self.capacity:
            return self._entries.popitem(last=False)
        return None


class ClockCache:
    """CLOCK (second chance): a circular buffer of frames with ref bits."""

    name = "clock"

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._frames: List[Optional[Key]] = []
        self._index: Dict[Key, int] = {}
        self._dirty: Dict[Key, bool] = {}
        self._referenced: Dict[Key, bool] = {}
        self._hand = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Key) -> bool:
        return key in self._index

    def lookup(self, key: Key) -> Optional[bool]:
        if key not in self._index:
            return None
        self._referenced[key] = True
        return self._dirty[key]

    def _advance(self) -> int:
        while True:
            if self._hand >= len(self._frames):
                self._hand = 0
            key = self._frames[self._hand]
            if key is None:
                return self._hand
            if self._referenced.get(key, False):
                self._referenced[key] = False
                self._hand += 1
                continue
            return self._hand

    def insert(self, key: Key, dirty: bool) -> Evicted:
        if key in self._index:
            self._dirty[key] = dirty
            self._referenced[key] = True
            return None
        if len(self._frames) < self.capacity:
            self._frames.append(key)
            self._index[key] = len(self._frames) - 1
            self._dirty[key] = dirty
            # Admit unreferenced: the bit is earned by a subsequent hit
            # (the variant that keeps second-chance meaningful).
            self._referenced[key] = False
            return None
        slot = self._advance()
        victim = self._frames[slot]
        evicted: Evicted = None
        if victim is not None:
            evicted = (victim, self._dirty[victim])
            del self._index[victim]
            del self._dirty[victim]
            self._referenced.pop(victim, None)
        self._frames[slot] = key
        self._index[key] = slot
        self._dirty[key] = dirty
        self._referenced[key] = False
        self._hand = slot + 1
        return evicted

    def discard(self, key: Key) -> Optional[bool]:
        slot = self._index.pop(key, None)
        if slot is None:
            return None
        self._frames[slot] = None
        self._referenced.pop(key, None)
        return self._dirty.pop(key)

    def set_dirty(self, key: Key, dirty: bool) -> None:
        self._dirty[key] = dirty

    def items(self) -> Iterator[Tuple[Key, bool]]:
        return iter([(k, self._dirty[k]) for k in self._index])

    def clear(self) -> None:
        self._frames.clear()
        self._index.clear()
        self._dirty.clear()
        self._referenced.clear()
        self._hand = 0


_POLICIES = {"lru": LRUCache, "fifo": FIFOCache, "clock": ClockCache}


def make_cache(policy: str, capacity: int):
    """Instantiate a cache by policy name (``lru`` / ``fifo`` / ``clock``)."""
    try:
        return _POLICIES[policy](capacity)
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown cache policy {policy!r}; known: {known}") from None
