"""Simulated external-memory substrate: block device, disk arrays, sorting.

See DESIGN.md §2 for how this simulator substitutes for the paper's physical
SSD while preserving the I/O-count comparisons the experiments make.
"""

from .stats import IOStats, MemoryMeter, PhysicalIOStats
from .device import (
    BlockDevice,
    InMemoryBlockDevice,
    ReferenceBlockDevice,
    DEFAULT_BLOCK_SIZE,
    DEFAULT_CACHE_BLOCKS,
    count_block_touches,
)
from .disk_array import DiskArray
from .external_sort import external_sort, external_argsort_by_key, external_sort_by_key
from .cache_policies import LRUCache, FIFOCache, ClockCache, make_cache

__all__ = [
    "IOStats",
    "MemoryMeter",
    "PhysicalIOStats",
    "BlockDevice",
    "InMemoryBlockDevice",
    "ReferenceBlockDevice",
    "DiskArray",
    "external_sort",
    "external_argsort_by_key",
    "external_sort_by_key",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CACHE_BLOCKS",
    "count_block_touches",
    "LRUCache",
    "FIFOCache",
    "ClockCache",
    "make_cache",
]
