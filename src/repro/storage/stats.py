"""I/O and memory accounting primitives.

The paper evaluates algorithms along three axes: wall-clock time, number of
read/write I/Os (in blocks of ``B`` bytes), and peak memory. This module
provides the two meters shared by every component of the library:

* :class:`IOStats` — counts block reads/writes and raw bytes moved. One
  instance is attached to each :class:`repro.storage.BlockDevice`; algorithms
  snapshot/diff it to report per-phase I/O.
* :class:`MemoryMeter` — tracks *model memory*: the bytes of node-indexed
  arrays plus dynamic structures an algorithm keeps resident. This is what
  the paper's ``O(n)`` / ``O(n + capacity)`` theorems bound. (Python RSS is
  dominated by interpreter overhead and would drown the signal.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
import contextlib


@dataclass
class PhysicalIOStats:
    """Counters for *physical* I/O performed by a file-backed device.

    The charged counters in :class:`IOStats` are the I/O model's bill: one
    I/O per block moved, regardless of backend. These counters are the
    syscall-level truth of the ``file`` backend — bytes that actually went
    through ``os.pread``/``os.pwrite`` plus the ``fsync`` barriers issued.
    A simulated device has none (its :attr:`IOStats.physical` stays
    ``None``); on a :class:`~repro.persistence.FileBlockDevice` they are
    nonzero whenever the charged counters are.

    The ``mmap`` backend adds the mapped-page pair: *bytes_mapped* is the
    total size of the read-only regions laid over ``.rgr`` images (mapping
    is free — no bytes move until a page is touched), and
    *page_faults_est* is the tiered cache's estimate of page faults —
    first touches of a page not resident in the pinned hot tier or the
    LRU cold tier. On that backend ``bytes_read`` counts faulted bytes
    (``page_faults_est * page_size``), not per-touch syscalls, which is
    exactly why its physical volume undercuts the ``file`` backend while
    the charged bill stays bit-identical.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    fsyncs: int = 0
    bytes_mapped: int = 0
    page_faults_est: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.bytes_mapped = 0
        self.page_faults_est = 0

    def snapshot(self) -> "PhysicalIOStats":
        """Return an independent copy of the current counters."""
        return PhysicalIOStats(
            self.bytes_read, self.bytes_written, self.fsyncs,
            self.bytes_mapped, self.page_faults_est,
        )

    def since(self, earlier: "PhysicalIOStats") -> "PhysicalIOStats":
        """Return the delta between *earlier* (a snapshot) and now.

        ``bytes_mapped`` is a gauge, not a flow: it measures how much
        region is currently laid over files, so a delta window that opens
        after graph load (every algorithm's ``result.io`` does) would
        always report 0. Deltas therefore carry the *current* mapped
        total.
        """
        return PhysicalIOStats(
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.fsyncs - earlier.fsyncs,
            self.bytes_mapped,
            self.page_faults_est - earlier.page_faults_est,
        )

    def merge(self, other: "PhysicalIOStats") -> None:
        """Add *other*'s counters into this one."""
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.fsyncs += other.fsyncs
        self.bytes_mapped += other.bytes_mapped
        self.page_faults_est += other.page_faults_est

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhysicalIOStats(MB_read={self.bytes_read / 2**20:.2f}, "
            f"MB_written={self.bytes_written / 2**20:.2f}, fsyncs={self.fsyncs}, "
            f"MB_mapped={self.bytes_mapped / 2**20:.2f}, "
            f"faults_est={self.page_faults_est})"
        )


@dataclass
class IOStats:
    """Counters for block-level I/O against a simulated disk.

    Attributes
    ----------
    read_ios:
        Number of block reads (a block touched while not resident in cache).
    write_ios:
        Number of block writes (a dirty block evicted or flushed).
    bytes_read / bytes_written:
        Raw byte volume behind those I/Os.
    physical:
        :class:`PhysicalIOStats` attached by a file-backed device, ``None``
        for purely simulated ones. Excluded from equality: the ``file``
        backend's contract is *identical charged counters* to ``simulated``
        while its physical counters are necessarily different (nonzero).
    """

    read_ios: int = 0
    write_ios: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    physical: Optional[PhysicalIOStats] = field(
        default=None, compare=False, repr=False
    )

    @property
    def total_ios(self) -> int:
        """Total read + write block operations."""
        return self.read_ios + self.write_ios

    def reset(self) -> None:
        """Zero all counters."""
        self.read_ios = 0
        self.write_ios = 0
        self.bytes_read = 0
        self.bytes_written = 0
        if self.physical is not None:
            self.physical.reset()

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(
            self.read_ios, self.write_ios, self.bytes_read, self.bytes_written,
            physical=None if self.physical is None else self.physical.snapshot(),
        )

    def since(self, earlier: "IOStats") -> "IOStats":
        """Return the delta between *earlier* (a snapshot) and now."""
        physical = None
        if self.physical is not None:
            physical = (
                self.physical.since(earlier.physical)
                if earlier.physical is not None
                else self.physical.snapshot()
            )
        return IOStats(
            self.read_ios - earlier.read_ios,
            self.write_ios - earlier.write_ios,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            physical=physical,
        )

    def merge(self, other: "IOStats") -> None:
        """Add *other*'s counters into this one (for multi-device runs)."""
        self.read_ios += other.read_ios
        self.write_ios += other.write_ios
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        if other.physical is not None:
            if self.physical is None:
                self.physical = PhysicalIOStats()
            self.physical.merge(other.physical)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.read_ios}, writes={self.write_ios}, "
            f"MB_read={self.bytes_read / 2**20:.2f}, MB_written={self.bytes_written / 2**20:.2f})"
        )


@dataclass
class MemoryMeter:
    """Tracks model memory held by an algorithm, with a high-water mark.

    Components register named allocations (``charge``) and release them
    (``release``); the meter records the peak total. Use
    :meth:`transient` for scope-bound allocations.
    """

    current_bytes: int = 0
    peak_bytes: int = 0
    _allocations: Dict[str, int] = field(default_factory=dict)

    def charge(self, name: str, nbytes: int) -> None:
        """Register (or resize) a named allocation of *nbytes* bytes."""
        if nbytes < 0:
            raise ValueError(f"negative allocation for {name!r}: {nbytes}")
        previous = self._allocations.get(name, 0)
        self._allocations[name] = nbytes
        self.current_bytes += nbytes - previous
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes

    def release(self, name: str) -> None:
        """Release a named allocation; unknown names are a no-op."""
        nbytes = self._allocations.pop(name, 0)
        self.current_bytes -= nbytes

    @contextlib.contextmanager
    def transient(self, name: str, nbytes: int) -> Iterator[None]:
        """Context manager charging *nbytes* for the duration of a scope."""
        self.charge(name, nbytes)
        try:
            yield
        finally:
            self.release(name)

    def reset(self) -> None:
        """Drop all allocations and zero the peak."""
        self.current_bytes = 0
        self.peak_bytes = 0
        self._allocations.clear()

    @property
    def peak_mib(self) -> float:
        """Peak model memory in MiB."""
        return self.peak_bytes / 2**20

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryMeter(current={self.current_bytes}B, peak={self.peak_bytes}B)"
