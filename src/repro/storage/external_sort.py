"""External-memory merge sort over :class:`DiskArray` data.

Algorithm 1 (line 3) sorts all edges of ``G`` by support with an external
merge sort before binary searching; the paper charges it
``O((N/B) log_{M/B}(N/B))`` I/Os. This module implements the classic
two-phase scheme:

1. **Run generation** — read memory-budget-sized chunks, sort each in RAM,
   write sorted runs back to scratch extents.
2. **K-way merge** — repeatedly merge up to ``fan_in`` runs through
   block-sized input buffers and one output buffer until one run remains.

Sorting a structured record set (e.g. edges keyed by support) is supported by
sorting an index permutation over a key array, or by sorting multi-column
data via :func:`external_sort_by_key`.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from .device import BlockDevice
from .disk_array import DiskArray


def _merge_pass(
    device: BlockDevice,
    runs: List[DiskArray],
    buffer_elems: int,
    name: str,
) -> DiskArray:
    """Merge sorted *runs* into one sorted DiskArray using block buffers."""
    total = sum(len(run) for run in runs)
    out = DiskArray(device, total, runs[0].dtype if runs else np.int64, name=name)
    # Per-run cursor state: (next buffered value position, buffer, disk offset)
    buffers = []
    positions = []
    offsets = []
    heap = []
    for run_index, run in enumerate(runs):
        chunk = run.read_slice(0, min(buffer_elems, len(run)))
        buffers.append(chunk)
        positions.append(0)
        offsets.append(len(chunk))
        if len(chunk):
            heapq.heappush(heap, (chunk[0].item(), run_index))
    out_buffer = np.empty(buffer_elems, dtype=out.dtype)
    out_fill = 0
    out_offset = 0
    while heap:
        value, run_index = heapq.heappop(heap)
        out_buffer[out_fill] = value
        out_fill += 1
        if out_fill == buffer_elems:
            out.write_slice(out_offset, out_buffer[:out_fill])
            out_offset += out_fill
            out_fill = 0
        positions[run_index] += 1
        run = runs[run_index]
        if positions[run_index] == len(buffers[run_index]):
            # Refill this run's buffer from disk.
            start = offsets[run_index]
            if start < len(run):
                stop = min(start + buffer_elems, len(run))
                buffers[run_index] = run.read_slice(start, stop)
                offsets[run_index] = stop
                positions[run_index] = 0
            else:
                buffers[run_index] = np.empty(0, dtype=run.dtype)
                positions[run_index] = 0
        if positions[run_index] < len(buffers[run_index]):
            heapq.heappush(
                heap, (buffers[run_index][positions[run_index]].item(), run_index)
            )
    if out_fill:
        out.write_slice(out_offset, out_buffer[:out_fill])
    return out


def external_sort(
    array: DiskArray,
    memory_elems: int = 1 << 16,
    fan_in: int = 16,
    name: str = "sorted",
) -> DiskArray:
    """Sort *array* ascending into a new DiskArray on the same device.

    Parameters
    ----------
    array:
        Input data (left untouched).
    memory_elems:
        In-RAM working-set budget, in elements; bounds run length and merge
        buffer sizes.
    fan_in:
        Maximum runs merged per pass (``M/B`` in the I/O model).
    """
    if memory_elems < 4:
        raise ValueError("memory_elems must be at least 4")
    device = array.device
    n = len(array)
    if n == 0:
        return DiskArray(device, 0, array.dtype, name=name)

    # Phase 1: run generation.
    runs: List[DiskArray] = []
    for start in range(0, n, memory_elems):
        stop = min(start + memory_elems, n)
        chunk = array.read_slice(start, stop)
        chunk.sort(kind="mergesort")
        runs.append(DiskArray.from_numpy(device, chunk, name=f"{name}.run{len(runs)}"))

    # Phase 2: iterative k-way merge.
    buffer_elems = max(1, memory_elems // (fan_in + 1))
    level = 0
    while len(runs) > 1:
        merged: List[DiskArray] = []
        for group_start in range(0, len(runs), fan_in):
            group = runs[group_start : group_start + fan_in]
            if len(group) == 1:
                merged.append(group[0])
                continue
            result = _merge_pass(
                device, group, buffer_elems, name=f"{name}.merge{level}.{len(merged)}"
            )
            for run in group:
                run.free()
            merged.append(result)
        runs = merged
        level += 1
    result = runs[0]
    result.name = name
    return result


def external_argsort_by_key(
    keys: DiskArray,
    memory_elems: int = 1 << 16,
    fan_in: int = 16,
    name: str = "argsorted",
) -> DiskArray:
    """Stable external sort of indices ``0..n-1`` by ``keys[i]``.

    Returns a DiskArray of indices such that gathering *keys* in that order
    is non-decreasing. Used to build ``T_edge(G)`` — the file of edge ids in
    non-decreasing support order (Alg 1 line 3).

    Keys and indices are packed into a single int64 as ``key * n + index``,
    which is exact while ``key * n + index < 2**63`` (true for all graph
    workloads here: support < n and index < m).
    """
    n = len(keys)
    if n == 0:
        return DiskArray(keys.device, 0, np.int64, name=name)
    packed = DiskArray(keys.device, n, np.int64, name=f"{name}.packed")
    stride = max(n, 1)
    block = max(1, memory_elems)
    for start in range(0, n, block):
        stop = min(start + block, n)
        chunk = keys.read_slice(start, stop).astype(np.int64)
        if chunk.size and chunk.min() < 0:
            raise ValueError("external_argsort_by_key requires non-negative keys")
        packed.write_slice(start, chunk * stride + np.arange(start, stop, dtype=np.int64))
    sorted_packed = external_sort(packed, memory_elems, fan_in, name=f"{name}.sortedpacked")
    packed.free()
    out = DiskArray(keys.device, n, np.int64, name=name)
    for start in range(0, n, block):
        stop = min(start + block, n)
        chunk = sorted_packed.read_slice(start, stop)
        out.write_slice(start, chunk % stride)
    sorted_packed.free()
    return out


def external_sort_by_key(
    keys: DiskArray,
    values: DiskArray,
    memory_elems: int = 1 << 16,
    fan_in: int = 16,
    name: str = "sortedvalues",
) -> DiskArray:
    """Return *values* permuted into non-decreasing *keys* order."""
    if len(keys) != len(values):
        raise ValueError("keys and values must have equal length")
    order = external_argsort_by_key(keys, memory_elems, fan_in, name=f"{name}.order")
    out = DiskArray(keys.device, len(values), values.dtype, name=name)
    block = max(1, memory_elems)
    for start in range(0, len(values), block):
        stop = min(start + block, len(values))
        indices = order.read_slice(start, stop)
        out.write_slice(start, values.gather(indices))
    order.free()
    return out
