"""Typed arrays living on a simulated :class:`BlockDevice`.

A :class:`DiskArray` is the edge-indexed workhorse of the semi-external
algorithms: per-edge support, alive flags, linear-heap link fields and the
sorted edge file ``T_edge(G)`` are all ``DiskArray``s. Every element access
is routed through the owning device so block I/Os are charged exactly as the
paper's model prescribes.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import ArrayBoundsError
from .device import BlockDevice

IndexLike = Union[int, np.integer]


class DiskArray:
    """A fixed-length typed array stored on a :class:`BlockDevice`.

    Parameters
    ----------
    device:
        The block device the array lives on.
    length:
        Number of elements.
    dtype:
        Any numpy dtype (int64 by default).
    name:
        Label used for the device extent (debugging / accounting).
    fill:
        Optional initial value; initialisation is charged as a sequential
        append-style write of the whole extent.

    Notes
    -----
    Reads return copies (like a real ``pread``), so callers can't mutate disk
    contents behind the accounting layer.
    """

    def __init__(
        self,
        device: BlockDevice,
        length: int,
        dtype: np.dtype = np.int64,
        name: str = "array",
        fill: int = None,
    ) -> None:
        if length < 0:
            raise ArrayBoundsError(f"length must be non-negative, got {length}")
        self.device = device
        self.length = int(length)
        self.dtype = np.dtype(dtype)
        self.itemsize = self.dtype.itemsize
        self.name = name
        self._data = np.zeros(self.length, dtype=self.dtype)
        self._mapped = False
        self.extent = device.allocate(name, self.length * self.itemsize)
        if fill is not None and self.length:
            self._data[:] = fill
            device.append_write(self.extent, 0, self.length * self.itemsize)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_numpy(
        cls, device: BlockDevice, values: np.ndarray, name: str = "array"
    ) -> "DiskArray":
        """Materialise *values* on *device*, charging a sequential write."""
        values = np.asarray(values)
        array = cls(device, len(values), values.dtype, name=name)
        if len(values):
            array._data[:] = values
            device.append_write(array.extent, 0, len(values) * array.itemsize)
        return array

    @classmethod
    def from_mapped(
        cls, device: BlockDevice, view: np.ndarray, name: str = "array"
    ) -> "DiskArray":
        """Adopt a read-only *view* as the payload — zero copy.

        Charges **exactly** what :meth:`from_numpy` charges (one
        sequential append-write of the extent: materialising the edge
        file is part of the paper's bill either way); the difference is
        purely physical — the payload stays the caller's buffer, which
        for the ``mmap`` backend is a page-cache view laid over a
        ``.rgr`` image. *view* must be read-only (zero-copy adoption of
        a writable buffer would let the owner mutate disk contents
        behind the accounting layer); a later charged write through
        :meth:`set` / :meth:`scatter` / … materialises a private copy
        first (copy-on-write), so mapped payloads are never written
        through. Devices exposing ``adopt_mapping`` (the mmap tier) are
        told about the adopted region so ``physical.bytes_mapped`` is
        accounted.
        """
        view = np.asarray(view)
        if view.ndim != 1:
            raise ArrayBoundsError(
                f"from_mapped expects a 1-d view for {name!r}, "
                f"got shape {view.shape}"
            )
        if view.flags.writeable:
            raise ArrayBoundsError(
                f"from_mapped requires a read-only view for {name!r} "
                "(freeze it, or use from_numpy to copy)"
            )
        array = cls.__new__(cls)
        array.device = device
        array.length = len(view)
        array.dtype = view.dtype
        array.itemsize = view.dtype.itemsize
        array.name = name
        array._data = view
        array._mapped = True
        array.extent = device.allocate(name, array.length * array.itemsize)
        if array.length:
            device.append_write(array.extent, 0, array.length * array.itemsize)
        adopt = getattr(device, "adopt_mapping", None)
        if adopt is not None:
            adopt(array.extent, view)
        return array

    @property
    def mapped(self) -> bool:
        """Whether the payload is still a zero-copy adopted view."""
        return self._mapped

    def _materialize(self) -> None:
        """Copy-on-write: replace a mapped view with a private writable
        copy before the first mutation (charges nothing — the write that
        triggered it is charged by the caller as usual)."""
        if self._mapped:
            self._data = np.array(self._data)
            self._mapped = False

    # ------------------------------------------------------------------ #
    # element and slice access
    # ------------------------------------------------------------------ #

    def _check_range(self, start: int, stop: int) -> None:
        if start < 0 or stop > self.length or start > stop:
            raise ArrayBoundsError(
                f"range [{start}, {stop}) out of bounds for {self.name!r} of length {self.length}"
            )

    def get(self, index: IndexLike) -> int:
        """Read one element (charged as a block read)."""
        index = int(index)
        self._check_range(index, index + 1)
        self.device.touch_read(self.extent, index * self.itemsize, self.itemsize)
        return self._data[index].item()

    def set(self, index: IndexLike, value: int) -> None:
        """Write one element (charged as a block write)."""
        index = int(index)
        self._check_range(index, index + 1)
        self.device.touch_write(self.extent, index * self.itemsize, self.itemsize)
        self._materialize()
        self._data[index] = value

    def read_slice(self, start: int, stop: int) -> np.ndarray:
        """Read ``[start, stop)`` as a fresh numpy array (charged).

        A contiguous range is a single access run, so the scalar touch it
        issues is exactly the batch path's n == 1 case (see
        :meth:`BlockDevice.touch_read_batch`); use :meth:`read_slices` to
        batch many ranges into one charged call.
        """
        start, stop = int(start), int(stop)
        self._check_range(start, stop)
        nbytes = (stop - start) * self.itemsize
        if nbytes:
            self.device.touch_read(self.extent, start * self.itemsize, nbytes)
        return self._data[start:stop].copy()

    def write_slice(self, start: int, values: np.ndarray) -> None:
        """Write *values* at *start* (charged)."""
        start = int(start)
        values = np.asarray(values, dtype=self.dtype)
        stop = start + len(values)
        self._check_range(start, stop)
        if len(values):
            self.device.touch_write(
                self.extent, start * self.itemsize, len(values) * self.itemsize
            )
            self._materialize()
            self._data[start:stop] = values

    def fill(self, value: int) -> None:
        """Overwrite the whole array (sequential write)."""
        if self.length:
            self._materialize()
            self._data[:] = value
            self.device.append_write(self.extent, 0, self.length * self.itemsize)

    # ------------------------------------------------------------------ #
    # bulk, maintenance
    # ------------------------------------------------------------------ #

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Read many scattered elements via the device's batch path.

        Indices are visited in the given order; a *run* of consecutive
        accesses landing on the same block is charged as a single block
        touch (run compression — see ``docs/io_model.md``). Non-adjacent
        repeats are charged again unless the buffer pool still holds the
        block, exactly as the equivalent sequence of single-element reads
        would be.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return np.empty(0, dtype=self.dtype)
        if indices.min() < 0 or indices.max() >= self.length:
            raise ArrayBoundsError(f"gather indices out of bounds for {self.name!r}")
        self.device.touch_read_batch(
            self.extent, indices * self.itemsize, self.itemsize
        )
        return self._data[indices].copy()

    def scatter(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Write many scattered elements via the device's batch path
        (run-compressed, same charges as element-at-a-time writes)."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=self.dtype)
        if len(indices) != len(values):
            raise ArrayBoundsError("scatter: indices and values length mismatch")
        if len(indices) == 0:
            return
        if indices.min() < 0 or indices.max() >= self.length:
            raise ArrayBoundsError(f"scatter indices out of bounds for {self.name!r}")
        self.device.touch_write_batch(
            self.extent, indices * self.itemsize, self.itemsize
        )
        self._materialize()
        self._data[indices] = values

    def read_slices(self, starts: np.ndarray, counts: np.ndarray):
        """Read many ``[start, start + count)`` runs in one batched access.

        Returns ``(values, bounds)`` where *values* is the concatenation of
        the requested runs and ``bounds[i]:bounds[i + 1]`` delimits run *i*.
        Charged exactly like the equivalent sequence of :meth:`read_slice`
        calls (the batch path preserves access order and run compression).
        """
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if starts.shape != counts.shape:
            raise ArrayBoundsError("read_slices: starts and counts length mismatch")
        bounds = np.zeros(len(starts) + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        if len(starts) == 0:
            return np.empty(0, dtype=self.dtype), bounds
        if (
            counts.min() < 0
            or starts.min() < 0
            or int((starts + counts).max()) > self.length
        ):
            raise ArrayBoundsError(
                f"read_slices ranges out of bounds for {self.name!r}"
            )
        self.device.touch_read_batch(
            self.extent, starts * self.itemsize, counts * self.itemsize
        )
        total = int(bounds[-1])
        if total == 0:
            return np.empty(0, dtype=self.dtype), bounds
        # Assemble by per-run slice copies: each run is contiguous, and
        # sequential copies are far cheaper than one huge fancy-index
        # gather over scattered positions.
        values = np.empty(total, dtype=self.dtype)
        data = self._data
        position = 0
        for start, count in zip(starts.tolist(), counts.tolist()):
            stop = position + count
            values[position:stop] = data[start:start + count]
            position = stop
        return values, bounds

    def adopt(self, values: np.ndarray) -> None:
        """Install *values* as the payload without charging any I/O.

        The parallel kernels compute payloads in worker processes and
        charge the canonical access sequence separately through the
        ledger-merge replay (``repro.parallel``); adopting here a second
        time through ``scatter`` would double-charge the writes. Algorithm
        code must pair every ``adopt`` with a replayed charge of the same
        accesses, or its I/O counts would lie.
        """
        values = np.asarray(values, dtype=self.dtype)
        if len(values) != self.length:
            raise ArrayBoundsError(
                f"adopt: {len(values)} values for {self.name!r} of length {self.length}"
            )
        self._materialize()
        self._data[:] = values

    def to_numpy(self) -> np.ndarray:
        """Full sequential read of the array contents."""
        return self.read_slice(0, self.length)

    def peek(self) -> np.ndarray:
        """Accounting-free view of the raw contents.

        For tests and result extraction only — algorithm code must never use
        this, or its I/O counts would lie.
        """
        return self._data

    def free(self) -> None:
        """Release the backing extent (models deleting a scratch file).

        A mapped payload's view reference is dropped here, so freeing
        the last array over a mapping lets the file be unlinked.
        """
        self.device.free(self.extent)
        self._data = np.empty(0, dtype=self.dtype)
        self._mapped = False
        self.length = 0

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskArray({self.name!r}, length={self.length}, dtype={self.dtype})"
