"""repro — I/O efficient max-truss computation in large static and dynamic
graphs (reproduction of Jiang et al., ICDE 2024).

Public API tour
---------------
>>> from repro import max_truss
>>> from repro.graph.generators import complete_graph
>>> result = max_truss(complete_graph(6), method="semi-lazy-update")
>>> result.k_max
6

Packages
--------
* :mod:`repro.engine` — engine configs, execution contexts, storage backends
* :mod:`repro.storage` — simulated block device / disk arrays / external sort
* :mod:`repro.graph` — graph types, file formats, generators, dataset stand-ins
* :mod:`repro.semiexternal` — support scans, triangles, core decomposition
* :mod:`repro.structures` — linear-heap, dynamic-heap, LHDH
* :mod:`repro.core` — SemiBinary / SemiGreedyCore / SemiLazyUpdate
* :mod:`repro.dynamic` — k_max-truss maintenance (+ YLJ baselines)
* :mod:`repro.baselines` — in-memory ground truth, Bottom-Up, Top-Down
* :mod:`repro.analysis` — degeneracy, cliques, dataset statistics
* :mod:`repro.observability` — structured tracing, metrics registry,
  per-phase I/O attribution
"""

from .core import (
    MaxTrussResult,
    MaintenanceResult,
    available_methods,
    max_truss,
    semi_binary,
    semi_greedy_core,
    semi_lazy_update,
)
from .engine import EngineConfig, ExecutionContext, available_backends
from .errors import ReproError
from .graph import Graph, MutableGraph, DiskGraph
from .observability import MetricsRegistry, Tracer, TraceWriter, read_trace
from .storage import BlockDevice, IOStats, MemoryMeter
from ._util import WorkBudget

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "MutableGraph",
    "DiskGraph",
    "BlockDevice",
    "IOStats",
    "MemoryMeter",
    "EngineConfig",
    "ExecutionContext",
    "available_backends",
    "WorkBudget",
    "MaxTrussResult",
    "MaintenanceResult",
    "ReproError",
    "max_truss",
    "available_methods",
    "semi_binary",
    "semi_greedy_core",
    "semi_lazy_update",
    "MetricsRegistry",
    "Tracer",
    "TraceWriter",
    "read_trace",
    "__version__",
]
