"""Inside the I/O model: watch where the block I/Os go.

Runs all algorithms on one web-graph stand-in under a semi-external-sized
buffer pool, breaking down read/write I/O, peak model memory and runtime —
a miniature of the paper's Fig 5 — and then demonstrates the LHDH capacity
knob (memory vs. spill-I/O trade-off).

Run:  python examples/external_memory_demo.py
"""

from repro import max_truss, semi_lazy_update
from repro.graph.datasets import load_dataset_with_spec
from repro.storage import BlockDevice


def main() -> None:
    graph, spec = load_dataset_with_spec("wikipedia-s", seed=0)
    print(f"dataset {spec.name}: stand-in for {spec.paper_name} "
          f"(paper: {spec.paper_m:,} edges, k_max={spec.paper_kmax})")
    print(f"stand-in size: n={graph.n} m={graph.m}\n")

    header = f"{'algorithm':>18} {'k_max':>6} {'reads':>8} {'writes':>8} " \
             f"{'mem(B)':>9} {'time(s)':>8}"
    print(header)
    print("-" * len(header))
    for method in ("top-down", "semi-binary", "semi-greedy-core",
                   "semi-lazy-update"):
        device = BlockDevice.for_semi_external(graph.n)
        result = max_truss(graph, method=method, device=device)
        print(f"{result.algorithm:>18} {result.k_max:>6} "
              f"{result.io.read_ios:>8} {result.io.write_ios:>8} "
              f"{result.peak_memory_bytes:>9} {result.elapsed_seconds:>8.2f}")

    print("\nLHDH dynamic-heap capacity sweep (memory vs. spill I/O):")
    for capacity in (4, 64, 1024, graph.n):
        device = BlockDevice.for_semi_external(graph.n)
        result = semi_lazy_update(graph, device=device, capacity=capacity)
        print(f"  capacity={capacity:>5}: io={result.io.total_ios:>7} "
              f"peak_mem={result.peak_memory_bytes:>8}B k_max={result.k_max}")


if __name__ == "__main__":
    main()
