"""The k_max-truss as a building block: the paper's §I applications.

Demonstrates on one attributed collaboration-style graph:

1. **community search** — the maximal maximum-trussness community around
   query members (Huang et al., cited in §I);
2. **keyword retrieval** — a minimal max-trussness subgraph covering query
   keywords (Zhu et al., cited in §I);
3. **batch maintenance** — a burst of updates resolved with a single
   global recomputation;
4. **FPT parameterisation** — k_max bounding the clique structure.

Run:  python examples/applications_demo.py
"""

from repro.analysis import clique_number, count_k_cliques
from repro.applications import keyword_search, truss_community
from repro.baselines import max_truss_edges
from repro.dynamic import DynamicMaxTruss
from repro.graph.generators import word_association


def main() -> None:
    graph, words = word_association(
        num_communities=3, community_size=10, intra_missing=0.12,
        noise_words=30, seed=4,
    )
    labels = {v: {words[v]} for v in range(graph.n)}
    k_max, _ = max_truss_edges(graph)
    print(f"attributed graph: {graph.n} vertices, {graph.m} edges, "
          f"k_max={k_max}\n")

    # 1. community search around two "music" members
    music = [v for v, w in enumerate(words) if w.startswith("music")][:2]
    community = truss_community(graph, music)
    print(f"community search for {[words[q] for q in community.query]}:")
    print(f"  k={community.k}, members: "
          + ", ".join(sorted(words[v] for v in community.vertices)) + "\n")

    # 2. keyword retrieval
    wanted = [words[0], words[3]]  # two alcohol-community words
    answer = keyword_search(graph, labels, wanted)
    print(f"keyword search for {wanted}:")
    print(f"  k={answer.k}, {answer.size} vertices, {len(answer.edges)} edges\n")

    # 3. batch maintenance: a burst of noise-edge churn, one recompute
    state = DynamicMaxTruss(graph)
    burst = []
    noise = [v for v, w in enumerate(words) if w.startswith("noise")]
    for index in range(6):
        u, v = noise[index], noise[index + 6]
        burst.append(
            ("delete", u, v) if state.graph.has_edge(u, v) else ("insert", u, v)
        )
    result = state.apply_batch(burst)
    print(f"batch of {result.operations} noise updates resolved as "
          f"'{result.mode}' (k_max {result.k_max_before} -> "
          f"{result.k_max_after}, io={result.io.total_ios})\n")

    # 4. FPT parameterisation: k_max bounds the clique structure
    omega = clique_number(graph)
    triangles = count_k_cliques(graph, 3)
    print(f"clique number ω = {omega} <= k_max = {k_max} (the paper's FPT "
          f"parameter bound); triangle count = {triangles}")


if __name__ == "__main__":
    main()
