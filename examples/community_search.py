"""Community search on a word-association network (the paper's case study).

Reproduces the Fig 9 comparison: the k_max-truss recovers a semantically
coherent community; the maximum clique is too strict (not noise-resistant,
misses words that lack one direct association); the maximum core is too
loose (sprawls across communities and noise).

Run:  python examples/community_search.py
"""

from repro import max_truss
from repro.analysis import maximum_clique, maximum_core
from repro.graph.generators import word_association


def show(title, words) -> None:
    print(f"{title} ({len(words)} words):")
    print("   " + ", ".join(sorted(words)))
    themes = {w.rsplit("_", 1)[0] for w in words}
    print(f"   themes touched: {sorted(themes)}\n")


def main() -> None:
    graph, labels = word_association(
        num_communities=3, community_size=10, intra_missing=0.15,
        noise_words=40, seed=1,
    )
    print(f"word-association network: {graph.n} words, {graph.m} associations\n")

    # --- the paper's model: k_max-truss ---
    result = max_truss(graph, method="semi-lazy-update")
    truss_words = [labels[v] for v in result.truss_vertices()]
    show(f"{result.k_max}-truss (k_max-truss)", truss_words)

    # --- comparator 1: maximum clique (too strict) ---
    clique_words = [labels[v] for v in maximum_clique(graph)]
    show("maximum clique", clique_words)

    # --- comparator 2: maximum core (too loose) ---
    core_words = [labels[v] for v in maximum_core(graph)]
    show("maximum k-core", core_words)

    print("Reading the output: the truss covers whole themed communities even")
    print("where two member words lack a direct edge (noise-resistance); the")
    print("clique stops at directly-connected words; the core over-expands.")


if __name__ == "__main__":
    main()
