"""Exploring the full truss hierarchy of a graph.

Beyond the single k_max answer, the decomposition induces a nested
hierarchy of communities — this walkthrough computes it once, prints the
level profile, zooms into one edge's containment chain, and exports the
k_max communities as Graphviz DOT and JSON for downstream tools.

Run:  python examples/hierarchy_explorer.py
"""

from repro.analysis import TrussHierarchy
from repro.applications import hierarchy_to_json, to_dot
from repro.graph.datasets import load_dataset_with_spec


def main() -> None:
    graph, spec = load_dataset_with_spec("wikipedia-s", seed=0)
    print(f"dataset {spec.name} (stand-in for {spec.paper_name}): "
          f"n={graph.n} m={graph.m}\n")

    hierarchy = TrussHierarchy(graph)
    print(f"k_max = {hierarchy.k_max}; level profile (k -> class size):")
    for k, size in hierarchy.level_profile().items():
        communities = len(hierarchy.communities(k)) if k >= 3 else "-"
        bar = "#" * min(60, max(1, size // 50))
        print(f"  k={k:>3}: {size:>6} edges, {communities} communities {bar}")

    # Zoom into one k_max-class edge: its community at every level.
    anchor = hierarchy.k_class_edges(hierarchy.k_max)[0]
    chain = hierarchy.containment_chain(*anchor)
    print(f"\ncontainment chain of edge {anchor} "
          "(community vertex count as k rises):")
    print("  " + " -> ".join(f"k={k}:{size}v" for k, size in chain))

    # Export the top communities.
    top = hierarchy.max_truss_communities()
    print(f"\n{len(top)} community(ies) at k_max; exporting the largest...")
    community_edges = top[0]
    vertices = sorted({x for e in community_edges for x in e})
    sub, _nodes, _edges = graph.subgraph_by_nodes(vertices)
    dot = to_dot(sub, highlight_edges=sub.edge_pairs(), name="kmax_truss")
    print(f"  DOT export: {len(dot.splitlines())} lines "
          f"(pipe into `dot -Tsvg` to render)")
    payload = hierarchy_to_json(hierarchy, max_levels=3)
    print(f"  JSON export (top 3 levels): {len(payload)} bytes")


if __name__ == "__main__":
    main()
