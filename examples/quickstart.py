"""Quickstart: compute the k_max-truss of a graph three ways.

Run:  python examples/quickstart.py
"""

from repro import max_truss
from repro.graph.generators import paper_example_graph


def main() -> None:
    # The running example from the paper (Fig 1): two K4 blocks bridged
    # through a hub vertex; its k_max is 4.
    graph = paper_example_graph()
    print(f"graph: {graph.n} vertices, {graph.m} edges\n")

    for method in ("semi-binary", "semi-greedy-core", "semi-lazy-update"):
        result = max_truss(graph, method=method)
        print(f"{result.algorithm:>16}: k_max={result.k_max} "
              f"truss_edges={result.truss_edge_count} "
              f"io={result.io.total_ios} "
              f"peak_mem={result.peak_memory_bytes}B")

    # The result object carries the truss itself:
    result = max_truss(graph)
    print(f"\nk_max-truss vertices: {result.truss_vertices()}")
    print(f"k_max-truss edges:    {result.truss_edges[:6]} ...")


if __name__ == "__main__":
    main()
