"""Streaming: the k_max-truss of a sliding window, with checkpointing.

Feeds a timestamped interaction stream (synthetic: waves of community
activity over a noisy background) through SlidingWindowTruss, watching
k_max rise and fall as dense bursts enter and age out of the window —
then checkpoints the underlying maintenance state and resumes it.

Run:  python examples/streaming_window.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.dynamic import SlidingWindowTruss, load_checkpoint, save_checkpoint
from repro.graph.generators import complete_graph


def interaction_stream(seed=0):
    """Background noise with two bursts of dense community activity."""
    rng = np.random.default_rng(seed)
    stream = []
    def noise(count, base):
        for _ in range(count):
            u, v = rng.integers(0, 40, size=2)
            if u != v:
                stream.append((int(u) + base, int(v) + base))

    noise(60, 0)
    stream.extend((u + 100, v + 100) for u, v in complete_graph(8).edge_pairs())
    noise(80, 0)
    stream.extend((u + 200, v + 200) for u, v in complete_graph(10).edge_pairs())
    noise(60, 0)
    return stream


def main() -> None:
    stream = SlidingWindowTruss(window=120, batch_size=10)
    print(f"window={stream.window}, batch={stream.batch_size}\n")
    events = interaction_stream()
    checkpoints = {len(events) // 2}
    path = Path(tempfile.mkdtemp()) / "window.ckpt"

    for index, (u, v) in enumerate(events, 1):
        stream.push(u, v)
        if index % 40 == 0:
            print(f"  after {index:>3} events: k_max={stream.k_max} "
                  f"(live edges: {stream.live_edge_count()})")
        if index in checkpoints:
            stream.flush()
            size = save_checkpoint(stream.state, path)
            print(f"  -- checkpointed maintenance state at event {index} "
                  f"({size} bytes)")

    print(f"\nfinal k_max: {stream.k_max}")
    print(f"peak k_max over the stream: {stream.stats.k_max_peak}")
    print(f"arrivals={stream.stats.arrivals} "
          f"expirations={stream.stats.expirations} "
          f"duplicates={stream.stats.duplicates_skipped}")

    restored = load_checkpoint(path)
    print(f"\nrestored mid-stream state: k_max={restored.k_max} "
          f"({restored.truss_edge_count()} class edges) — "
          "a crashed stream processor resumes from here")


if __name__ == "__main__":
    main()
