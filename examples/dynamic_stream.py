"""Maintaining the k_max-truss over a live update stream (paper §IV).

Simulates an evolving social network: a stream of edge insertions and
deletions maintained by Algorithms 5/6, reporting per-operation cost and
resolution mode, then verifies the final state against a from-scratch
recomputation.

Run:  python examples/dynamic_stream.py
"""

import numpy as np

from repro.baselines import max_truss_edges
from repro.dynamic import DynamicMaxTruss
from repro.graph.generators import planted_kmax_truss


def main() -> None:
    graph = planted_kmax_truss(10, periphery_n=150, seed=7)
    state = DynamicMaxTruss(graph)
    print(f"initial graph: n={graph.n} m={graph.m} k_max={state.k_max}\n")

    rng = np.random.default_rng(7)
    modes = {"untouched": 0, "local": 0, "global": 0}
    total_ios = 0
    operations = 0
    for _step in range(120):
        u = int(rng.integers(0, graph.n))
        v = int(rng.integers(0, graph.n))
        if u == v:
            continue
        if state.graph.has_edge(u, v):
            result = state.delete(u, v)
        else:
            result = state.insert(u, v)
        modes[result.mode] += 1
        total_ios += result.io.total_ios
        operations += 1
        if result.changed:
            print(f"  step {operations:>3}: {result.operation} ({u},{v}) "
                  f"-> k_max {result.k_max_before} -> {result.k_max_after} "
                  f"[{result.mode}]")

    print(f"\nprocessed {operations} updates")
    print(f"resolution modes: {modes}")
    print(f"average I/O per update: {total_ios / operations:.1f} blocks")
    print(f"final k_max: {state.k_max} ({state.truss_edge_count()} class edges)")

    # Verify against recomputation from scratch.
    frozen, _ = state.graph.to_graph()
    expected_k, expected_edges = max_truss_edges(frozen)
    assert state.k_max == expected_k
    assert state.truss_pairs() == expected_edges
    print("verified: maintained state equals from-scratch recomputation ✓")


if __name__ == "__main__":
    main()
